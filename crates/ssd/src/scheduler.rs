//! The device-level I/O scheduler interface (NVMHC scheduling hook).
//!
//! All the controllers the paper compares — VAS, PAS, and the Sprinkler variants —
//! are implemented against this trait (in the `sprinkler-core` crate).  The SSD
//! substrate invokes [`IoScheduler::schedule`] whenever scheduling-relevant state
//! changes (tag admission, memory-request completion, transaction completion); the
//! scheduler inspects the device queue and the commitment ledger's occupancy view
//! and returns the memory requests it wants to compose and commit.

use std::fmt;
use std::sync::Arc;

use sprinkler_flash::FlashGeometry;
use sprinkler_sim::{SimTime, TelemetryCounters};

use crate::ftl::PageMigration;
use crate::ledger::CommitmentLedger;
use crate::queue::{DeviceQueue, TagState};
use crate::request::TagId;

pub use crate::ledger::ChipOccupancy;

/// One scheduling decision: compose and commit the memory request for page
/// `page` of tag `tag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Commitment {
    /// The tag whose page is being committed.
    pub tag: TagId,
    /// The page offset within the tag's I/O request.
    pub page: u32,
}

/// Everything a scheduler may inspect when making decisions.
///
/// The context borrows the SSD's state; schedulers never mutate the SSD directly —
/// they only return [`Commitment`]s.
#[derive(Debug)]
pub struct SchedulerContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Flash geometry (chip/die/plane counts).
    pub geometry: &'a FlashGeometry,
    /// The device-level queue with per-tag commitment/completion state.
    pub queue: &'a DeviceQueue,
    /// The commitment ledger: per-chip occupancy and the hard commitment cap.
    pub ledger: &'a CommitmentLedger,
}

impl<'a> SchedulerContext<'a> {
    /// Tags in arrival order together with their state.
    pub fn tags(&self) -> impl Iterator<Item = &'a TagState> + '_ {
        self.queue.iter_states()
    }

    /// Hard cap on committed-but-incomplete memory requests per chip.
    pub fn max_committed_per_chip(&self) -> usize {
        self.ledger.max_committed_per_chip()
    }

    /// Outstanding committed requests for a chip.
    pub fn outstanding(&self, chip: usize) -> usize {
        self.ledger.outstanding(chip)
    }

    /// Whether a chip is currently executing a transaction.
    pub fn chip_busy(&self, chip: usize) -> bool {
        self.ledger.is_busy(chip)
    }

    /// Remaining commit capacity for a chip under the hard cap.  The ledger
    /// guarantees this is the *full* `max_committed_per_chip` headroom: same-
    /// round commits are reflected in `outstanding` once, never double-counted.
    pub fn capacity_left(&self, chip: usize) -> usize {
        self.ledger.headroom(chip)
    }

    /// Total number of chips.
    pub fn chip_count(&self) -> usize {
        self.ledger.chip_count()
    }
}

/// A device-level I/O scheduler implemented in the NVMHC.
pub trait IoScheduler: fmt::Debug + Send {
    /// Human-readable scheduler name ("VAS", "PAS", "SPK3", ...).
    fn name(&self) -> &'static str;

    /// Called once before the simulation starts.
    fn initialize(&mut self, _geometry: &FlashGeometry) {}

    /// Hands the scheduler the run's telemetry counters (called once, before
    /// the simulation starts).  Schedulers that instrument their hot path keep
    /// a clone of the `Arc`; the default implementation ignores it.
    fn attach_telemetry(&mut self, _telemetry: &Arc<TelemetryCounters>) {}

    /// Decides which memory requests to compose and commit right now,
    /// appending the decisions to `out` in application order.
    ///
    /// `out` is a caller-owned scratch buffer (cleared before the call) so the
    /// per-round hot path performs no allocations once its capacity has grown
    /// to the high-water mark.  Commitments that are invalid (unknown tag,
    /// already-committed page) are ignored by the SSD, and commitments beyond
    /// a chip's hard capacity are deferred.
    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>);

    /// Allocating convenience wrapper around [`IoScheduler::schedule_into`]
    /// for tests and tools that don't manage a reusable buffer.
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Commitment> {
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut out);
        out
    }

    /// Notification that a committed memory request completed.
    fn on_complete(&mut self, _tag: TagId, _page: u32) {}

    /// Whether this scheduler implements the readdressing callback of §4.3.
    fn supports_readdressing(&self) -> bool {
        false
    }

    /// Live-data migration notification (only delivered when
    /// [`IoScheduler::supports_readdressing`] returns `true`).
    fn on_readdress(&mut self, _migration: &PageMigration) {}
}

/// A minimal reference scheduler that eagerly commits every uncommitted page of
/// every queued tag, in arrival order, up to each chip's hard capacity.
///
/// It exists for substrate tests and as a documentation example; the paper's
/// schedulers live in the `sprinkler-core` crate.
#[derive(Debug, Default, Clone)]
pub struct CommitAllScheduler {
    /// Reusable per-round scratch: remaining commit budget per chip.
    budget: Vec<usize>,
}

impl CommitAllScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        CommitAllScheduler::default()
    }
}

impl IoScheduler for CommitAllScheduler {
    fn name(&self) -> &'static str {
        "commit-all"
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        self.budget.clear();
        self.budget
            .extend((0..ctx.chip_count()).map(|c| ctx.capacity_left(c)));
        for tag in ctx.tags() {
            for page in tag.uncommitted_pages() {
                let chip = tag.placements[page as usize].chip;
                if self.budget.get(chip).copied().unwrap_or(0) == 0 {
                    continue;
                }
                self.budget[chip] -= 1;
                out.push(Commitment { tag: tag.id, page });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Direction, HostRequest, Placement};
    use sprinkler_flash::Lpn;

    fn ctx_fixture<'a>(
        queue: &'a DeviceQueue,
        ledger: &'a CommitmentLedger,
        geometry: &'a FlashGeometry,
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now: SimTime::ZERO,
            geometry,
            queue,
            ledger,
        }
    }

    fn make_queue(geometry: &FlashGeometry) -> DeviceQueue {
        let mut q = DeviceQueue::new(8);
        for t in 0..2u64 {
            let host = HostRequest::new(t, SimTime::ZERO, Direction::Read, Lpn::new(t * 10), 3);
            let placements = (0..3)
                .map(|i| Placement {
                    chip: (t as usize + i) % geometry.total_chips(),
                    channel: 0,
                    way: 0,
                    die: 0,
                    plane: i as u32 % geometry.planes_per_die as u32,
                })
                .collect();
            assert!(q.admit(TagId(t), host, SimTime::ZERO, placements));
        }
        q
    }

    #[test]
    fn context_views_expose_queue_and_ledger() {
        let geometry = FlashGeometry::small_test();
        let queue = make_queue(&geometry);
        let outstanding: Vec<usize> = (0..geometry.total_chips())
            .map(|chip| chip.min(2))
            .collect();
        let mut ledger = CommitmentLedger::from_outstanding(2, &outstanding);
        ledger.set_busy(1, true);
        let ctx = ctx_fixture(&queue, &ledger, &geometry);
        assert_eq!(ctx.tags().count(), 2);
        assert!(ctx.chip_busy(1));
        assert!(!ctx.chip_busy(0));
        assert_eq!(ctx.outstanding(2), 2);
        assert_eq!(ctx.capacity_left(0), 2);
        assert_eq!(ctx.capacity_left(2), 0);
        assert_eq!(ctx.chip_count(), geometry.total_chips());
        assert_eq!(ctx.max_committed_per_chip(), 2);
        assert_eq!(ctx.outstanding(999), 0);
        assert!(!ctx.chip_busy(999));
    }

    #[test]
    fn commit_all_respects_chip_budget() {
        let geometry = FlashGeometry::small_test();
        let queue = make_queue(&geometry);
        let outstanding: Vec<usize> = (0..geometry.total_chips())
            .map(|chip| if chip == 0 { 2 } else { 0 })
            .collect();
        let ledger = CommitmentLedger::from_outstanding(2, &outstanding);
        let ctx = ctx_fixture(&queue, &ledger, &geometry);
        let mut sched = CommitAllScheduler::new();
        assert_eq!(sched.name(), "commit-all");
        let commitments = sched.schedule(&ctx);
        // Chip 0 has no budget left, so its pages are skipped.
        assert!(commitments
            .iter()
            .all(|c| queue.tag(c.tag).unwrap().placements[c.page as usize].chip != 0));
        // All other pages are committed.
        assert!(!commitments.is_empty());
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for c in &commitments {
            assert!(seen.insert((c.tag, c.page)));
        }
    }

    #[test]
    fn default_trait_hooks_are_noops() {
        let mut sched = CommitAllScheduler::new();
        sched.initialize(&FlashGeometry::small_test());
        sched.on_complete(TagId(0), 0);
        assert!(!sched.supports_readdressing());
    }
}
