//! The event-driven many-chip SSD simulator.
//!
//! [`Ssd`] binds every substrate component together and simulates the full I/O
//! service routine of Fig 3: host arrivals → device-queue admission (tags) →
//! scheduler-driven memory-request composition and commitment → host DMA → FTL
//! translation/allocation → per-chip transaction coalescing at the flash
//! controllers → channel-arbitrated bus phases and overlapped cell phases →
//! completion upcalls, bitmap clearing, and I/O retirement.  Garbage collection
//! injects internal flash traffic and fires readdressing callbacks for schedulers
//! that support them.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use sprinkler_flash::{Chip, FlashOp, Lpn, ParallelismLevel, PhysicalPageAddr};
use sprinkler_sim::{Duration, EventQueue, SimTime, TelemetryCounters};

use crate::channel::Channel;
use crate::config::SsdConfig;
use crate::controller::{FlashController, PendingRequest, TxnScratch};
use crate::dma::DmaEngine;
use crate::ftl::Ftl;
use crate::ledger::CommitmentLedger;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::queue::DeviceQueue;
use crate::request::{Direction, HostRequest, MemReqId, MemReqPhase, MemoryRequest, TagId};
use crate::scheduler::{Commitment, IoScheduler, SchedulerContext};

/// Simulation events.
#[derive(Debug)]
enum SsdEvent {
    /// A host I/O request arrives at the SSD.
    Arrival(HostRequest),
    /// Run the scheduler.
    Schedule,
    /// Host write data for a memory request finished crossing the DMA engine.
    WriteDataReady(MemReqId),
    /// A chip's transaction decision window expired; try to build a transaction.
    ChipKick(usize),
    /// The cell phase of a transaction finished; arbitrate its completion phase.
    CellDone(u64),
    /// A transaction (including its completion bus phase) finished.
    TxnComplete(u64),
    /// Read data for a memory request finished returning to the host.
    ReadReturned(MemReqId),
}

/// A transaction currently executing on a chip.
#[derive(Debug)]
struct LiveTransaction {
    chip: usize,
    channel: usize,
    members: Vec<MemReqId>,
    level: ParallelismLevel,
    request_count: usize,
    bus_time: Duration,
    cell_time: Duration,
    contention: Duration,
    completion_bus: Duration,
}

/// The role a memory request plays in a garbage-collection job.
#[derive(Debug, Clone, Copy)]
enum GcRole {
    Read {
        job: usize,
        lpn: Lpn,
        to: PhysicalPageAddr,
    },
    Program {
        job: usize,
    },
    Erase {
        job: usize,
    },
}

/// One in-flight garbage-collection invocation.
#[derive(Debug)]
struct GcJob {
    plane: usize,
    outstanding_reads: usize,
    outstanding_programs: usize,
    erase_addr: PhysicalPageAddr,
    erase_issued: bool,
    finished: bool,
}

/// The simulated many-chip SSD.
///
/// # Example
///
/// ```
/// use sprinkler_ssd::{Ssd, SsdConfig};
/// use sprinkler_ssd::scheduler::CommitAllScheduler;
/// use sprinkler_ssd::request::{Direction, HostRequest};
/// use sprinkler_flash::Lpn;
/// use sprinkler_sim::SimTime;
///
/// let config = SsdConfig::small_test();
/// let mut ssd = Ssd::new(config, Box::new(CommitAllScheduler::new())).unwrap();
/// let trace = vec![
///     HostRequest::new(0, SimTime::ZERO, Direction::Write, Lpn::new(0), 8),
///     HostRequest::new(1, SimTime::from_micros(5), Direction::Read, Lpn::new(0), 8),
/// ];
/// let metrics = ssd.run(trace);
/// assert_eq!(metrics.io_count, 2);
/// assert!(metrics.avg_latency_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Ssd {
    config: SsdConfig,
    scheduler: Box<dyn IoScheduler>,
    ftl: Ftl,
    chips: Vec<Chip>,
    channels: Vec<Channel>,
    controllers: Vec<FlashController>,
    dma: DmaEngine,
    queue: DeviceQueue,
    events: EventQueue<SsdEvent>,

    waiting_host: VecDeque<HostRequest>,
    mem_requests: HashMap<MemReqId, MemoryRequest>,
    /// Commitment/occupancy accounting, maintained incrementally (commit,
    /// completion, transaction start/end) so scheduling rounds never rebuild an
    /// O(chip count) view.  All cap enforcement and per-round counting lives in
    /// the ledger; see [`CommitmentLedger`] for the invariants.
    ledger: CommitmentLedger,
    live_txns: HashMap<u64, LiveTransaction>,
    chip_kick_pending: Vec<bool>,
    schedule_pending: bool,
    /// Reusable commitment buffer for scheduling rounds (`schedule_into`).
    commit_buf: Vec<Commitment>,
    /// Reusable scratch + buffer pools for transaction building.
    txn_scratch: TxnScratch,
    /// Always-on hot-path counters, shared with the scheduler and frozen into
    /// the run metrics at finalize.
    telemetry: Arc<TelemetryCounters>,

    gc_jobs: Vec<GcJob>,
    gc_roles: HashMap<MemReqId, GcRole>,
    gc_active_planes: HashSet<usize>,
    readdressed_lpns: HashSet<u64>,

    next_tag: u64,
    next_mreq: u64,
    next_txn: u64,
    failed_writes: u64,

    metrics: MetricsCollector,
    record_series: bool,
}

impl Ssd {
    /// Builds an SSD from a configuration and a scheduler.
    ///
    /// # Errors
    ///
    /// Returns the configuration validation error message if `config` is invalid.
    pub fn new(config: SsdConfig, scheduler: Box<dyn IoScheduler>) -> Result<Self, String> {
        Self::with_series(config, scheduler, false)
    }

    /// Like [`Ssd::new`] but also records the per-I/O latency time series needed by
    /// Fig 12.
    pub fn with_series(
        config: SsdConfig,
        mut scheduler: Box<dyn IoScheduler>,
        record_series: bool,
    ) -> Result<Self, String> {
        config.validate()?;
        let geometry = config.geometry.clone();
        scheduler.initialize(&geometry);
        let chips: Vec<Chip> = (0..geometry.total_chips())
            .map(|i| Chip::new(geometry.chip_location(i), &geometry))
            .collect();
        let channels = (0..geometry.channels).map(Channel::new).collect();
        let controllers = (0..geometry.channels)
            .map(|c| FlashController::new(c, geometry.chips_per_channel))
            .collect();
        let ftl = Ftl::new(
            geometry.clone(),
            config.allocation,
            config.gc.free_block_watermark,
        );
        let metrics = MetricsCollector::new(scheduler.name(), record_series);
        let telemetry = Arc::clone(metrics.telemetry());
        scheduler.attach_telemetry(&telemetry);
        let total_chips = geometry.total_chips();
        // Pre-size the transaction scratch to its structural bounds so the
        // steady-state hot loop never grows it: a chip's pending set is capped
        // by the per-chip commitment budget, a transaction folds at most one
        // request per (die, plane), and at most one transaction per chip is
        // live at a time.
        let mut txn_scratch = TxnScratch::new();
        txn_scratch.preallocate(
            config.max_committed_per_chip,
            geometry.dies_per_chip * geometry.planes_per_die,
            total_chips,
        );
        // In-flight memory requests are bounded by the commitment ledger
        // (every committed page is at most one in-flight memory request), and
        // at most one transaction per chip is live at a time.
        let in_flight_bound = total_chips.saturating_mul(config.max_committed_per_chip);
        Ok(Ssd {
            dma: DmaEngine::new(config.dma_bytes_per_sec),
            queue: DeviceQueue::new(config.queue_depth),
            events: EventQueue::new(),
            waiting_host: VecDeque::new(),
            mem_requests: HashMap::with_capacity(in_flight_bound),
            ledger: CommitmentLedger::new(total_chips, config.max_committed_per_chip),
            live_txns: HashMap::with_capacity(total_chips),
            chip_kick_pending: vec![false; total_chips],
            schedule_pending: false,
            commit_buf: Vec::new(),
            txn_scratch,
            telemetry,
            gc_jobs: Vec::new(),
            gc_roles: HashMap::new(),
            gc_active_planes: HashSet::new(),
            readdressed_lpns: HashSet::new(),
            next_tag: 0,
            next_mreq: 0,
            next_txn: 0,
            failed_writes: 0,
            metrics,
            record_series,
            config,
            scheduler,
            ftl,
            chips,
            channels,
            controllers,
        })
    }

    /// The configuration this SSD was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Whether the latency series is being recorded.
    pub fn records_series(&self) -> bool {
        self.record_series
    }

    /// Registers per-tenant metric lanes for this run.  Completed I/Os whose
    /// [`HostRequest::tenant`] indexes a registered lane are attributed to it
    /// (latency measured from [`HostRequest::submitted`]); the lanes surface
    /// as [`RunMetrics::tenants`].  Call before replay starts.
    pub fn configure_tenants(&mut self, specs: &[crate::metrics::TenantLaneSpec]) {
        self.metrics.configure_tenants(specs);
    }

    /// The run's shared telemetry counter bundle (also incremented by the
    /// multi-tenant admission front, so tenant admission/deferral/throttle
    /// counts land in the same per-run snapshot).
    pub fn telemetry(&self) -> &Arc<TelemetryCounters> {
        self.metrics.telemetry()
    }

    /// Pre-conditions the SSD into a fragmented state (live data occupying
    /// `utilization` of the physical capacity) so garbage collection triggers
    /// quickly, as in the Fig 17 experiments.  Must be called before [`Ssd::run`].
    pub fn precondition(&mut self, utilization: f64, seed: u64) {
        self.ftl.precondition(utilization, seed);
    }

    /// Runs the simulation over a trace of host requests and returns the collected
    /// metrics.  Requests may arrive in any order; they are sorted by arrival time
    /// and then replayed through the bounded-admission streaming loop of
    /// [`Ssd::run_stream`].
    pub fn run(self, trace: impl IntoIterator<Item = HostRequest>) -> RunMetrics {
        let mut arrivals: Vec<HostRequest> = trace.into_iter().collect();
        arrivals.sort_by_key(|r| (r.arrival, r.id));
        self.run_stream(arrivals)
    }

    /// Runs the simulation over a *time-ordered* stream of host requests with
    /// bounded admission: at most one pulled-but-unscheduled request plus a
    /// host-side backlog capped at the device queue depth are ever buffered, so
    /// the replay's memory footprint is O(queue depth + in-flight work) — not
    /// O(trace length) as with a fully materialized arrival list.  This is the
    /// path every experiment replay runs through; multi-million-I/O traces
    /// stream straight from a generator or parser.
    ///
    /// A request is *ingested* (its arrival event handled) when its arrival
    /// time is due before the next simulation event and the backlog has room;
    /// requests arriving faster than the device retires work wait inside the
    /// source instead of piling up in memory.  Deferral never changes recorded
    /// arrival times, admission order, or admission times, so the metrics are
    /// identical to an eager replay.
    ///
    /// # Panics
    ///
    /// Panics if the stream yields a request whose arrival time precedes the
    /// previous request's (use [`Ssd::run`] for unsorted traces).
    pub fn run_stream(mut self, arrivals: impl IntoIterator<Item = HostRequest>) -> RunMetrics {
        let mut source = arrivals.into_iter();
        let backlog_cap = self.config.queue_depth.max(1);
        let mut next = source.next();
        let mut last_arrival = SimTime::ZERO;
        loop {
            let due = match (&next, self.events.peek_time()) {
                (Some(request), Some(next_event)) => request.arrival <= next_event,
                (Some(_), None) => true,
                (None, _) => false,
            };
            // With an empty event queue the arrival must be ingested regardless
            // of the backlog bound, or the replay could not make progress (in
            // practice a full backlog implies queued tags and therefore pending
            // events).
            let backlog_has_room = self.waiting_host.len() < backlog_cap || self.events.is_empty();
            if due && backlog_has_room {
                TelemetryCounters::incr(&self.telemetry.stream_admissions);
                let request = next.take().expect("due implies a pulled request");
                assert!(
                    request.arrival >= last_arrival,
                    "run_stream requires nondecreasing arrival times (request {} at {} ns \
                     after {} ns)",
                    request.id,
                    request.arrival.as_nanos(),
                    last_arrival.as_nanos(),
                );
                last_arrival = request.arrival;
                next = source.next();
                // An arrival deferred past its nominal time (backlog was full)
                // is ingested at the current simulation time; `request.arrival`
                // itself is what every metric records.
                let at = request.arrival.max(self.events.now());
                self.handle_event(at, SsdEvent::Arrival(request));
            } else if let Some((now, event)) = self.events.pop() {
                if due {
                    // A request was due but the bounded backlog had no room:
                    // the loop drains device events instead of ingesting.
                    TelemetryCounters::incr(&self.telemetry.stream_stalls);
                }
                self.handle_event(now, event);
            } else {
                debug_assert!(next.is_none(), "replay stalled with requests left");
                break;
            }
            self.metrics
                .record_queue_pressure(self.waiting_host.len(), self.events.len());
        }
        self.finalize()
    }

    fn finalize(self) -> RunMetrics {
        let end = self.events.now();
        let chip_busy: Vec<Duration> = self.chips.iter().map(|c| c.stats().busy).collect();
        let plane_busy: Vec<Duration> = self.chips.iter().map(|c| c.stats().plane_busy).collect();
        let planes_per_chip =
            self.config.geometry.dies_per_chip * self.config.geometry.planes_per_die;
        self.metrics.finalize(
            end,
            &chip_busy,
            &plane_busy,
            planes_per_chip,
            self.ftl.gc_stats(),
        )
    }

    fn handle_event(&mut self, now: SimTime, event: SsdEvent) {
        match event {
            SsdEvent::Arrival(request) => {
                self.metrics.record_arrival(request.arrival);
                self.waiting_host.push_back(request);
                self.try_admit(now);
                self.request_schedule(now);
            }
            SsdEvent::Schedule => {
                self.schedule_pending = false;
                self.run_scheduler(now);
            }
            SsdEvent::WriteDataReady(id) => {
                self.deliver_to_controller(id, now);
            }
            SsdEvent::ChipKick(chip) => {
                self.chip_kick_pending[chip] = false;
                self.try_start_transaction(chip, now);
            }
            SsdEvent::CellDone(txn_id) => {
                self.handle_cell_done(txn_id, now);
            }
            SsdEvent::TxnComplete(txn_id) => {
                self.handle_txn_complete(txn_id, now);
            }
            SsdEvent::ReadReturned(id) => {
                self.complete_mem_request(id, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Admission and scheduling
    // ------------------------------------------------------------------

    fn try_admit(&mut self, now: SimTime) {
        while !self.queue.is_full() {
            let Some(request) = self.waiting_host.pop_front() else {
                break;
            };
            let tag = TagId(self.next_tag);
            self.next_tag += 1;
            self.metrics.record_admission(request.arrival, now);
            // `admit_with` fills placements straight from the FTL preview into
            // the tag's (possibly recycled) placement buffer — no intermediate
            // Vec per admission.
            let ftl = &self.ftl;
            let admitted = self.queue.admit_with(tag, request, now, |page| {
                ftl.preview(request.lpn_at(page), request.direction)
            });
            debug_assert!(admitted, "admission into a non-full queue must succeed");
        }
    }

    fn request_schedule(&mut self, now: SimTime) {
        if !self.schedule_pending {
            self.schedule_pending = true;
            self.events.schedule(now, SsdEvent::Schedule);
        }
    }

    fn run_scheduler(&mut self, now: SimTime) {
        if self.queue.is_empty() {
            return;
        }
        TelemetryCounters::incr(&self.telemetry.sched_rounds);
        self.ledger.begin_round();
        // The commitment buffer is taken out of `self` for the borrow, reused
        // every round (capacity sticks at the high-water mark).
        let mut commitments = std::mem::take(&mut self.commit_buf);
        commitments.clear();
        {
            let ctx = SchedulerContext {
                now,
                geometry: &self.config.geometry,
                queue: &self.queue,
                ledger: &self.ledger,
            };
            self.scheduler.schedule_into(&ctx, &mut commitments);
        }
        for &Commitment { tag, page } in &commitments {
            self.commit_memory_request(tag, page, now);
        }
        self.commit_buf = commitments;
    }

    fn commit_memory_request(&mut self, tag_id: TagId, page: u32, now: SimTime) {
        let page_size = self.config.page_size() as u64;
        // One tag-id lookup resolves the dense slot handle; everything below
        // (state access, commitment, retirement) goes through the handle.
        let Some(slot) = self.queue.slot_of(tag_id) else {
            return;
        };
        let Some(tag) = self.queue.state_at(slot as usize) else {
            return;
        };
        if page as usize >= tag.pages() {
            return;
        }
        let chip = tag.placements[page as usize].chip;
        // Commitments beyond the chip's headroom are deferred to a later round.
        // `outstanding` already reflects this round's commits exactly once, so
        // the headroom available within a single round is the full
        // `max_committed_per_chip`.
        if self.ledger.headroom(chip) == 0 {
            TelemetryCounters::incr(&self.telemetry.ledger_headroom_exhausted);
            return;
        }
        let host = tag.host;
        let placement = tag.placements[page as usize];
        if !self.queue.commit_page_at(slot, page, now) {
            return;
        }
        self.ledger.commit(chip);
        let id = MemReqId(self.next_mreq);
        self.next_mreq += 1;
        let request = MemoryRequest::new_host(
            id,
            tag_id,
            page,
            host.lpn_at(page),
            host.direction,
            placement,
            now,
        );
        let is_write = host.direction.is_write();
        self.mem_requests.insert(id, request);
        if is_write {
            // Write payload must cross the host interface before the flash program
            // can be composed (memory request composition + data movement, Fig 3).
            let ready = self.dma.transfer(now, page_size);
            self.events.schedule(ready, SsdEvent::WriteDataReady(id));
        } else {
            self.deliver_to_controller(id, now);
        }
    }

    // ------------------------------------------------------------------
    // Delivery to flash controllers and transaction execution
    // ------------------------------------------------------------------

    fn deliver_to_controller(&mut self, id: MemReqId, now: SimTime) {
        let Some(request) = self.mem_requests.get(&id) else {
            return;
        };
        let lpn = request.lpn;
        let direction = request.direction;
        if request.gc {
            // GC traffic is delivered directly via `gc_delivery`, never here.
            debug_assert!(false, "GC requests must not reach deliver_to_controller");
            return;
        }

        let (addr, op) = if direction.is_read() {
            (self.ftl.translate_read(lpn), FlashOp::Read)
        } else {
            match self.ftl.allocate_write(lpn) {
                Some(alloc) => {
                    let plane = self.ftl.plane_index_of_addr(alloc.addr);
                    if self.config.gc.enabled && self.ftl.needs_gc(plane) {
                        self.start_gc(plane, now);
                    }
                    (alloc.addr, FlashOp::Program)
                }
                None => {
                    // The SSD is completely full; fail the write but keep the
                    // simulation making progress.
                    self.failed_writes += 1;
                    self.complete_mem_request(id, now);
                    return;
                }
            }
        };

        let extra_delay = if !self.scheduler.supports_readdressing()
            && self.readdressed_lpns.remove(&lpn.value())
        {
            self.config.gc.stale_readdress_penalty
        } else {
            Duration::ZERO
        };

        if let Some(request) = self.mem_requests.get_mut(&id) {
            request.phase = MemReqPhase::Pending;
            request.delivered_at = now;
        }
        let tag = self.mem_requests.get(&id).and_then(|r| r.tag);
        let pending = PendingRequest {
            id,
            addr,
            op,
            delivered_at: now,
            gc: false,
            tag,
            extra_delay,
        };
        let channel = addr.channel as usize;
        let chip = self.config.geometry.chip_index(addr.channel, addr.way);
        self.controllers[channel].deliver(pending);
        if !self.chips[chip].is_busy() {
            self.schedule_chip_kick(chip, now);
        }
    }

    fn schedule_chip_kick(&mut self, chip: usize, now: SimTime) {
        if self.chip_kick_pending[chip] {
            return;
        }
        self.chip_kick_pending[chip] = true;
        self.events
            .schedule(now + self.config.decision_window, SsdEvent::ChipKick(chip));
    }

    fn try_start_transaction(&mut self, chip_index: usize, now: SimTime) {
        if self.chips[chip_index].is_busy() {
            return;
        }
        let location = self.config.geometry.chip_location(chip_index);
        let channel_index = location.channel as usize;
        let way = location.way as usize;
        let Some(built) = self.controllers[channel_index].build_transaction_with(
            way,
            &self.config.geometry,
            &mut self.txn_scratch,
        ) else {
            return;
        };
        let issue_time = self.config.timing.issue_bus_time(&built.txn);
        let ready = self.chips[chip_index].ready_at().max(now) + built.extra_delay;
        let grant = self.channels[channel_index].acquire(ready, issue_time);
        let phase = self.chips[chip_index]
            .begin_transaction(&built.txn, grant.start, &self.config.timing)
            .expect("idle chip accepted the transaction");
        self.ledger.set_busy(chip_index, true);

        for member in &built.members {
            if let Some(request) = self.mem_requests.get_mut(member) {
                request.phase = MemReqPhase::Executing;
            }
        }
        let txn_id = self.next_txn;
        self.next_txn += 1;
        self.live_txns.insert(
            txn_id,
            LiveTransaction {
                chip: chip_index,
                channel: channel_index,
                members: built.members,
                level: built.txn.parallelism(),
                request_count: built.txn.requests().len(),
                bus_time: phase.issue_bus() + phase.completion_bus,
                cell_time: phase.cell(),
                contention: grant.waited,
                completion_bus: phase.completion_bus,
            },
        );
        // The transaction's request buffer goes back into the pool for the
        // next build on this SSD.
        self.txn_scratch.recycle_requests(built.txn.into_requests());
        self.events
            .schedule(phase.cell_end, SsdEvent::CellDone(txn_id));
    }

    fn handle_cell_done(&mut self, txn_id: u64, now: SimTime) {
        let (channel, completion_bus) = {
            let Some(live) = self.live_txns.get(&txn_id) else {
                return;
            };
            (live.channel, live.completion_bus)
        };
        let grant = self.channels[channel].acquire(now, completion_bus);
        if let Some(live) = self.live_txns.get_mut(&txn_id) {
            live.contention += grant.waited;
        }
        self.events
            .schedule(grant.end, SsdEvent::TxnComplete(txn_id));
    }

    fn handle_txn_complete(&mut self, txn_id: u64, now: SimTime) {
        let Some(live) = self.live_txns.remove(&txn_id) else {
            return;
        };
        self.chips[live.chip].complete_transaction(now);
        self.ledger.set_busy(live.chip, false);
        self.metrics.record_transaction(
            live.level,
            live.request_count,
            live.bus_time,
            live.contention,
            live.cell_time,
        );
        let page_size = self.config.page_size() as u64;
        let members = live.members;
        for &member in &members {
            let Some(request) = self.mem_requests.get(&member) else {
                continue;
            };
            if request.gc {
                self.gc_request_done(member, now);
            } else if request.direction.is_read() {
                // Read payload returns to the host through the DMA engine.
                let done = self.dma.transfer(now, page_size);
                if let Some(r) = self.mem_requests.get_mut(&member) {
                    r.phase = MemReqPhase::Returning;
                }
                self.events.schedule(done, SsdEvent::ReadReturned(member));
            } else {
                self.complete_mem_request(member, now);
            }
        }
        self.txn_scratch.recycle_members(members);
        let location = self.config.geometry.chip_location(live.chip);
        if self.controllers[location.channel as usize].has_pending(location.way as usize) {
            self.schedule_chip_kick(live.chip, now);
        }
        self.request_schedule(now);
    }

    fn complete_mem_request(&mut self, id: MemReqId, now: SimTime) {
        let Some(mut request) = self.mem_requests.remove(&id) else {
            return;
        };
        request.phase = MemReqPhase::Complete;
        request.completed_at = now;
        if !request.gc {
            // Every host commitment was charged to the ledger at commit time;
            // the ledger audits that this retirement has a matching charge
            // instead of silently saturating.
            self.ledger.retire(request.placement.chip);
        }
        if let Some(tag_id) = request.tag {
            let slot = self.queue.slot_of(tag_id);
            let mut finished: Option<(HostRequest, SimTime)> = None;
            if let Some(slot) = slot {
                if self.queue.complete_page_at(slot, request.page_index) {
                    let tag = self
                        .queue
                        .state_at(slot as usize)
                        .expect("completed page belongs to a queued tag");
                    if tag.fully_committed() && tag.fully_completed() {
                        finished = Some((tag.host, now));
                    }
                }
            }
            self.scheduler.on_complete(tag_id, request.page_index);
            if let Some((host, completed_at)) = finished {
                self.metrics.record_io(
                    host.id,
                    host.direction.is_read(),
                    host.bytes(self.config.page_size()),
                    host.arrival,
                    completed_at,
                );
                // Tenant attribution measures from the pre-admission
                // submission time; a no-op unless lanes were configured.
                self.metrics.record_tenant_io(
                    host.tenant,
                    host.direction.is_read(),
                    host.bytes(self.config.page_size()),
                    host.submitted,
                    completed_at,
                );
                // Recycle the tag's buffers so later admissions reuse them.
                if let Some(state) = slot.and_then(|slot| self.queue.retire_at(slot)) {
                    self.queue.recycle(state);
                }
                self.try_admit(now);
            }
        }
        self.request_schedule(now);
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    fn start_gc(&mut self, plane: usize, now: SimTime) {
        if self.gc_active_planes.contains(&plane) {
            return;
        }
        let Some(plan) = self.ftl.collect_plane(plane) else {
            return;
        };
        self.gc_active_planes.insert(plane);
        let job_index = self.gc_jobs.len();
        self.gc_jobs.push(GcJob {
            plane,
            outstanding_reads: 0,
            outstanding_programs: 0,
            erase_addr: plan.erase_addr,
            erase_issued: false,
            finished: false,
        });
        // Readdressing: tell Sprinkler-class schedulers, update stale previews, or
        // queue up penalties for schedulers without the callback.
        for migration in &plan.migrations {
            if migration.crossed_plane {
                if self.scheduler.supports_readdressing() {
                    self.scheduler.on_readdress(migration);
                    self.refresh_placements(migration.lpn);
                } else {
                    self.readdressed_lpns.insert(migration.lpn.value());
                }
            }
        }
        // Valid pages are read first; their programs are issued as the reads finish.
        for migration in &plan.migrations {
            let id = MemReqId(self.next_mreq);
            self.next_mreq += 1;
            let placement = crate::request::Placement::from_addr(
                migration.from,
                self.config.geometry.chips_per_channel,
            );
            let request = MemoryRequest::new_gc(id, migration.lpn, Direction::Read, placement, now);
            self.mem_requests.insert(id, request);
            self.gc_roles.insert(
                id,
                GcRole::Read {
                    job: job_index,
                    lpn: migration.lpn,
                    to: migration.to,
                },
            );
            self.gc_jobs[job_index].outstanding_reads += 1;
            self.gc_delivery(id, migration.from, FlashOp::Read, now);
        }
        if self.gc_jobs[job_index].outstanding_reads == 0 {
            // Nothing valid to migrate: erase immediately.
            self.issue_gc_erase(job_index, now);
        }
    }

    fn refresh_placements(&mut self, lpn: Lpn) {
        let preview = self.ftl.preview(lpn, Direction::Read);
        self.queue.refresh_placements(lpn.value(), preview);
    }

    fn gc_delivery(&mut self, id: MemReqId, addr: PhysicalPageAddr, op: FlashOp, now: SimTime) {
        let channel = addr.channel as usize;
        let chip = self.config.geometry.chip_index(addr.channel, addr.way);
        self.controllers[channel].deliver(PendingRequest {
            id,
            addr,
            op,
            delivered_at: now,
            gc: true,
            tag: None,
            extra_delay: Duration::ZERO,
        });
        if !self.chips[chip].is_busy() {
            self.schedule_chip_kick(chip, now);
        }
    }

    fn gc_request_done(&mut self, id: MemReqId, now: SimTime) {
        let Some(role) = self.gc_roles.remove(&id) else {
            self.mem_requests.remove(&id);
            return;
        };
        self.mem_requests.remove(&id);
        match role {
            GcRole::Read { job, lpn, to } => {
                self.gc_jobs[job].outstanding_reads -= 1;
                // The read content is now re-programmed at its new home.
                let prog_id = MemReqId(self.next_mreq);
                self.next_mreq += 1;
                let placement = crate::request::Placement::from_addr(
                    to,
                    self.config.geometry.chips_per_channel,
                );
                let request = MemoryRequest::new_gc(prog_id, lpn, Direction::Write, placement, now);
                self.mem_requests.insert(prog_id, request);
                self.gc_roles.insert(prog_id, GcRole::Program { job });
                self.gc_jobs[job].outstanding_programs += 1;
                self.gc_delivery(prog_id, to, FlashOp::Program, now);
            }
            GcRole::Program { job } => {
                self.gc_jobs[job].outstanding_programs -= 1;
                if self.gc_jobs[job].outstanding_reads == 0
                    && self.gc_jobs[job].outstanding_programs == 0
                    && !self.gc_jobs[job].erase_issued
                {
                    self.issue_gc_erase(job, now);
                }
            }
            GcRole::Erase { job } => {
                self.gc_jobs[job].finished = true;
                let plane = self.gc_jobs[job].plane;
                self.gc_active_planes.remove(&plane);
            }
        }
    }

    fn issue_gc_erase(&mut self, job_index: usize, now: SimTime) {
        let erase_addr = self.gc_jobs[job_index].erase_addr;
        self.gc_jobs[job_index].erase_issued = true;
        let id = MemReqId(self.next_mreq);
        self.next_mreq += 1;
        let placement = crate::request::Placement::from_addr(
            erase_addr,
            self.config.geometry.chips_per_channel,
        );
        let request = MemoryRequest::new_gc(id, Lpn::new(0), Direction::Write, placement, now);
        self.mem_requests.insert(id, request);
        self.gc_roles.insert(id, GcRole::Erase { job: job_index });
        self.gc_delivery(id, erase_addr, FlashOp::Erase, now);
    }

    /// Number of writes that failed because the SSD ran out of physical space.
    pub fn failed_writes(&self) -> u64 {
        self.failed_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::scheduler::CommitAllScheduler;

    fn write_req(id: u64, at_us: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest::new(
            id,
            SimTime::from_micros(at_us),
            Direction::Write,
            Lpn::new(lpn),
            pages,
        )
    }

    fn read_req(id: u64, at_us: u64, lpn: u64, pages: u32) -> HostRequest {
        HostRequest::new(
            id,
            SimTime::from_micros(at_us),
            Direction::Read,
            Lpn::new(lpn),
            pages,
        )
    }

    fn run_small(trace: Vec<HostRequest>) -> RunMetrics {
        let ssd = Ssd::new(SsdConfig::small_test(), Box::new(CommitAllScheduler::new())).unwrap();
        ssd.run(trace)
    }

    #[test]
    fn empty_trace_produces_empty_metrics() {
        let metrics = run_small(vec![]);
        assert_eq!(metrics.io_count, 0);
        assert_eq!(metrics.transactions, 0);
    }

    #[test]
    fn single_read_completes_with_plausible_latency() {
        let metrics = run_small(vec![read_req(0, 0, 0, 1)]);
        assert_eq!(metrics.io_count, 1);
        assert_eq!(metrics.read_ios, 1);
        assert_eq!(metrics.bytes_read, 2048);
        // Latency must cover at least the read cell time (20us) plus transfers.
        assert!(
            metrics.avg_latency_ns > 20_000.0,
            "{}",
            metrics.avg_latency_ns
        );
        assert!(metrics.avg_latency_ns < 1_000_000.0);
        assert_eq!(metrics.transactions, 1);
        assert_eq!(metrics.memory_requests, 1);
    }

    #[test]
    fn single_write_completes() {
        let metrics = run_small(vec![write_req(0, 0, 0, 1)]);
        assert_eq!(metrics.io_count, 1);
        assert_eq!(metrics.write_ios, 1);
        assert_eq!(metrics.bytes_written, 2048);
        // Fast-page program is 200us.
        assert!(metrics.avg_latency_ns > 200_000.0);
    }

    #[test]
    fn multi_page_request_spreads_over_chips() {
        // 8 sequential pages spread across the 4 chips of the small geometry.
        let metrics = run_small(vec![read_req(0, 0, 0, 8)]);
        assert_eq!(metrics.io_count, 1);
        assert!(metrics.memory_requests == 8);
        assert!(metrics.chip_utilization > 0.0);
        // Striping over 4 chips means at most ~2 pages per chip; the transaction
        // count must be well below 8 if coalescing works at all, and at least 4.
        assert!(metrics.transactions >= 4);
    }

    #[test]
    fn reads_after_writes_hit_written_locations() {
        let mut trace = vec![write_req(0, 0, 0, 8)];
        trace.push(read_req(1, 3000, 0, 8));
        let metrics = run_small(trace);
        assert_eq!(metrics.io_count, 2);
        assert_eq!(metrics.read_ios, 1);
        assert_eq!(metrics.write_ios, 1);
    }

    #[test]
    fn many_requests_all_complete() {
        let mut trace = Vec::new();
        for i in 0..50u64 {
            if i % 3 == 0 {
                trace.push(write_req(i, i * 10, i * 4, 4));
            } else {
                trace.push(read_req(i, i * 10, (i % 7) * 16, 4));
            }
        }
        let metrics = run_small(trace);
        assert_eq!(metrics.io_count, 50);
        assert!(metrics.bandwidth_kb_per_sec > 0.0);
        assert!(metrics.iops > 0.0);
        assert!(metrics.chip_utilization > 0.0 && metrics.chip_utilization <= 1.0);
        assert!(metrics.inter_chip_idleness >= 0.0 && metrics.inter_chip_idleness <= 1.0);
        assert!(metrics.intra_chip_idleness >= 0.0 && metrics.intra_chip_idleness <= 1.0);
        let flp_sum: f64 = metrics.flp.as_array().iter().sum();
        assert!((flp_sum - 1.0).abs() < 1e-9);
        let exec_sum = metrics.execution.bus_operation
            + metrics.execution.bus_contention
            + metrics.execution.memory_operation
            + metrics.execution.idle;
        assert!((exec_sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn queue_pressure_creates_stall_time() {
        // Small queue (8) + 64 simultaneous arrivals => some must wait.
        let trace: Vec<HostRequest> = (0..64).map(|i| read_req(i, 0, i * 4, 2)).collect();
        let metrics = run_small(trace);
        assert_eq!(metrics.io_count, 64);
        assert!(metrics.queue_stall_ns > 0);
    }

    #[test]
    fn latency_series_is_recorded_when_enabled() {
        let config = SsdConfig::small_test();
        let ssd = Ssd::with_series(config, Box::new(CommitAllScheduler::new()), true).unwrap();
        let metrics = ssd.run((0..5).map(|i| read_req(i, i * 100, i * 4, 1)));
        assert_eq!(metrics.latency_series.len(), 5);
        assert!(metrics.latency_series.iter().all(|&(_, l)| l > 0));
    }

    #[test]
    fn overwrites_with_gc_enabled_trigger_collection() {
        let config = SsdConfig::small_test()
            .with_blocks_per_plane(4)
            .with_gc(GcConfig {
                enabled: true,
                free_block_watermark: 1,
                blocks_per_invocation: 1,
                stale_readdress_penalty: Duration::from_micros(40),
            });
        let ssd = Ssd::new(config, Box::new(CommitAllScheduler::new())).unwrap();
        // Hammer a small logical range with rewrites so blocks fill with stale data.
        let mut trace = Vec::new();
        for i in 0..400u64 {
            trace.push(write_req(i, i * 50, i % 16, 1));
        }
        let metrics = ssd.run(trace);
        assert_eq!(metrics.io_count, 400);
        assert!(metrics.gc.invocations > 0, "GC should have run");
        assert!(metrics.gc.blocks_erased > 0);
    }

    #[test]
    fn preconditioned_ssd_gcs_sooner() {
        let config = SsdConfig::small_test()
            .with_blocks_per_plane(4)
            .with_gc(GcConfig::enabled());
        let mut ssd = Ssd::new(config, Box::new(CommitAllScheduler::new())).unwrap();
        ssd.precondition(0.90, 7);
        let trace: Vec<HostRequest> = (0..60).map(|i| write_req(i, i * 100, i % 32, 1)).collect();
        let metrics = ssd.run(trace);
        assert_eq!(metrics.io_count, 60);
        assert!(metrics.gc.invocations > 0);
    }

    #[test]
    fn scheduler_name_is_propagated() {
        let ssd = Ssd::new(SsdConfig::small_test(), Box::new(CommitAllScheduler::new())).unwrap();
        assert_eq!(ssd.scheduler_name(), "commit-all");
        assert!(!ssd.records_series());
        assert_eq!(ssd.config().queue_depth, 8);
        let metrics = ssd.run(vec![read_req(0, 0, 0, 1)]);
        assert_eq!(metrics.scheduler, "commit-all");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = SsdConfig::small_test();
        config.queue_depth = 0;
        assert!(Ssd::new(config, Box::new(CommitAllScheduler::new())).is_err());
    }

    /// A probe that proposes every uncommitted page each round and records the
    /// per-chip outstanding counts it observes at the start of every round.
    #[derive(Debug)]
    struct HeadroomProbe {
        observed: std::sync::Arc<std::sync::Mutex<Vec<Vec<usize>>>>,
    }

    impl crate::scheduler::IoScheduler for HeadroomProbe {
        fn name(&self) -> &'static str {
            "headroom-probe"
        }

        fn schedule_into(
            &mut self,
            ctx: &crate::scheduler::SchedulerContext<'_>,
            out: &mut Vec<crate::scheduler::Commitment>,
        ) {
            let outstanding: Vec<usize> =
                (0..ctx.chip_count()).map(|c| ctx.outstanding(c)).collect();
            self.observed.lock().unwrap().push(outstanding);
            for tag in ctx.tags() {
                for page in tag.uncommitted_pages() {
                    out.push(crate::scheduler::Commitment { tag: tag.id, page });
                }
            }
        }
    }

    /// The seed's replay loop, kept as a test-only reference: every arrival is
    /// pre-scheduled as an event up front (memory O(trace length)) and the
    /// event queue drained.  `run_stream`'s bounded-admission deferral must be
    /// observationally identical to this.
    fn run_eager_reference(mut ssd: Ssd, trace: Vec<HostRequest>) -> RunMetrics {
        let mut arrivals = trace;
        arrivals.sort_by_key(|r| (r.arrival, r.id));
        for request in arrivals {
            ssd.events
                .schedule(request.arrival, SsdEvent::Arrival(request));
        }
        while let Some((now, event)) = ssd.events.pop() {
            ssd.handle_event(now, event);
        }
        ssd.finalize()
    }

    /// Locks the claim in `run_stream`'s docs: deferring arrivals under the
    /// backlog bound changes neither metrics nor scheduling outcomes relative
    /// to the seed's eager, pre-scheduled replay — exercised on a saturating
    /// burst (64 simultaneous arrivals through the 8-deep queue, so most
    /// arrivals are deferred far past their nominal times), a paced trace,
    /// and a GC-enabled overwrite storm.
    #[test]
    fn bounded_streaming_matches_the_eager_reference_loop() {
        let saturating: Vec<HostRequest> = (0..64)
            .map(|i| {
                if i % 3 == 0 {
                    write_req(i, 0, (i % 16) * 4, 4)
                } else {
                    read_req(i, 0, (i % 7) * 16, 2)
                }
            })
            .collect();
        let paced: Vec<HostRequest> = (0..50)
            .map(|i| read_req(i, i * 40, (i % 9) * 8, 3))
            .collect();
        for trace in [saturating, paced] {
            let config = SsdConfig::small_test();
            let eager = run_eager_reference(
                Ssd::new(config.clone(), Box::new(CommitAllScheduler::new())).unwrap(),
                trace.clone(),
            );
            let streamed = Ssd::new(config, Box::new(CommitAllScheduler::new()))
                .unwrap()
                .run(trace);
            // Everything except the new backpressure gauges must agree; the
            // gauges themselves are what the bounded loop improves.
            assert_eq!(eager.io_count, streamed.io_count);
            assert_eq!(eager.avg_latency_ns, streamed.avg_latency_ns);
            assert_eq!(eager.queue_stall_ns, streamed.queue_stall_ns);
            assert_eq!(eager.transactions, streamed.transactions);
            assert_eq!(eager.memory_requests, streamed.memory_requests);
            assert_eq!(eager.elapsed_ns, streamed.elapsed_ns);
            assert_eq!(eager.latency_series, streamed.latency_series);
            assert!(streamed.peak_host_backlog <= 8);
        }

        // GC readdressing mutates queue state outside scheduling rounds; the
        // deferral must not change GC outcomes either.
        let config = SsdConfig::small_test()
            .with_blocks_per_plane(4)
            .with_gc(GcConfig::enabled());
        let storm: Vec<HostRequest> = (0..300).map(|i| write_req(i, i * 20, i % 16, 1)).collect();
        let eager = run_eager_reference(
            Ssd::new(config.clone(), Box::new(CommitAllScheduler::new())).unwrap(),
            storm.clone(),
        );
        let streamed = Ssd::new(config, Box::new(CommitAllScheduler::new()))
            .unwrap()
            .run(storm);
        assert_eq!(eager.io_count, streamed.io_count);
        assert_eq!(eager.gc.invocations, streamed.gc.invocations);
        assert_eq!(eager.gc.blocks_erased, streamed.gc.blocks_erased);
        assert_eq!(eager.avg_latency_ns, streamed.avg_latency_ns);
    }

    /// Regression test for the seed's same-round over-commitment double-count:
    /// with `max_committed_per_chip = N`, a single scheduling round must be able
    /// to commit N pages to one chip.  The seed charged same-round commits
    /// against the cap twice (per-round scratch *and* `outstanding`), so a round
    /// saturated at ceil(N / 2) — here, 4 of the 8 pages per chip.
    #[test]
    fn a_single_round_commits_the_full_per_chip_cap() {
        let config = SsdConfig::small_test();
        let max = config.max_committed_per_chip;
        assert_eq!(max, 8, "the fixture relies on the small_test cap");
        let chips = config.geometry.total_chips();
        let observed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let probe = HeadroomProbe {
            observed: std::sync::Arc::clone(&observed),
        };
        let ssd = Ssd::new(config, Box::new(probe)).unwrap();
        // One 32-page read stripes 8 pages onto each of the 4 chips.  A second
        // tiny arrival 500 ns later triggers a new scheduling round long before
        // any flash transaction can complete (decision window 1 us + ≥20 us
        // read cell time), so round 2 observes exactly what round 1 committed.
        let trace = vec![
            read_req(0, 0, 0, 32),
            HostRequest::new(
                1,
                SimTime::from_nanos(500),
                Direction::Read,
                Lpn::new(256),
                1,
            ),
        ];
        let metrics = ssd.run(trace);
        assert_eq!(metrics.io_count, 2);
        let rounds = observed.lock().unwrap();
        assert!(rounds.len() >= 2, "two scheduling rounds must have run");
        assert_eq!(rounds[0], vec![0; chips], "round 1 starts from idle chips");
        // Every chip accepted its full cap of 8 same-round commitments; under
        // the seed's double-count this read [4, 4, 4, 4].
        assert_eq!(
            rounds[1],
            vec![max; chips],
            "round 1 must have committed the full per-chip cap"
        );
    }
}
