//! Deterministic integer-math token bucket for burst isolation.
//!
//! Tokens are tracked in a fixed-point unit of **byte·nanoseconds-per-second**
//! (one byte of credit = `NS_PER_SEC` scaled tokens), so refill is the exact
//! integer product `rate_bytes_per_sec × elapsed_ns` with no floating point
//! anywhere — replaying the same trace always produces the same admission
//! schedule, bit for bit.

use sprinkler_sim::{Duration, SimTime};

use crate::spec::TokenBucketConfig;

const NS_PER_SEC: u128 = 1_000_000_000;

/// Deterministic token bucket: starts full, refills linearly with simulated
/// time, and answers "when could a transfer of `n` bytes proceed?" exactly.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    config: TokenBucketConfig,
    /// Current credit, scaled by [`NS_PER_SEC`] (1 byte = 1e9 tokens).
    tokens_scaled: u128,
    /// Instant the bucket was last refilled to.
    refilled_at: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket.  A zero-rate config disables throttling: the
    /// bucket is always ready and charges are no-ops.
    pub fn new(config: TokenBucketConfig) -> Self {
        TokenBucket {
            config,
            tokens_scaled: config.capacity_bytes as u128 * NS_PER_SEC,
            refilled_at: SimTime::ZERO,
        }
    }

    /// Whether throttling is active (a zero rate disables the bucket).
    pub fn is_limited(&self) -> bool {
        self.config.rate_bytes_per_sec > 0
    }

    /// Advances the bucket to `now`, accruing credit.  Monotone: calling with
    /// an earlier time than a previous refill is a no-op.
    fn refill(&mut self, now: SimTime) {
        if now <= self.refilled_at {
            return;
        }
        let elapsed_ns = now.saturating_since(self.refilled_at).as_nanos() as u128;
        let gained = self.config.rate_bytes_per_sec as u128 * elapsed_ns;
        let cap = self.config.capacity_bytes as u128 * NS_PER_SEC;
        self.tokens_scaled = (self.tokens_scaled + gained).min(cap);
        self.refilled_at = now;
    }

    /// The cost of a transfer, clamped to the bucket capacity so a single
    /// record larger than the whole burst allowance drains a full bucket
    /// instead of waiting forever.
    fn cost_scaled(&self, bytes: u64) -> u128 {
        (bytes.min(self.config.capacity_bytes.max(1)) as u128) * NS_PER_SEC
    }

    /// The earliest instant ≥ `now` at which `bytes` could be charged.
    /// Refills the bucket to `now` as a side effect (monotone, so safe to call
    /// speculatively while scanning tenants).
    pub fn ready_at(&mut self, now: SimTime, bytes: u64) -> SimTime {
        if !self.is_limited() {
            return now;
        }
        self.refill(now);
        let cost = self.cost_scaled(bytes);
        if self.tokens_scaled >= cost {
            return now;
        }
        let missing = cost - self.tokens_scaled;
        let rate = self.config.rate_bytes_per_sec as u128;
        let wait_ns = missing.div_ceil(rate);
        now + Duration::from_nanos(wait_ns.min(u64::MAX as u128) as u64)
    }

    /// Charges `bytes` at `now`.  Call only when [`TokenBucket::ready_at`]
    /// returned a time ≤ `now`; charging early saturates at zero credit.
    pub fn charge(&mut self, now: SimTime, bytes: u64) {
        if !self.is_limited() {
            return;
        }
        self.refill(now);
        let cost = self.cost_scaled(bytes);
        self.tokens_scaled = self.tokens_scaled.saturating_sub(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_us(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn unlimited_bucket_is_always_ready() {
        let mut bucket = TokenBucket::new(TokenBucketConfig::unlimited());
        assert!(!bucket.is_limited());
        assert_eq!(bucket.ready_at(at_us(5), u64::MAX), at_us(5));
        bucket.charge(at_us(5), u64::MAX);
        assert_eq!(bucket.ready_at(at_us(5), 1), at_us(5));
    }

    #[test]
    fn full_bucket_admits_up_to_capacity_then_throttles() {
        // 1 MB/s, 64 KB burst.
        let mut bucket = TokenBucket::new(TokenBucketConfig::new(1_000_000, 65_536));
        assert_eq!(bucket.ready_at(SimTime::ZERO, 65_536), SimTime::ZERO);
        bucket.charge(SimTime::ZERO, 65_536);
        // Empty now: 4096 bytes at 1 MB/s takes exactly 4_096_000 ns.
        let ready = bucket.ready_at(SimTime::ZERO, 4096);
        assert_eq!(ready.as_nanos(), 4_096_000);
        // After that wait the charge succeeds and re-empties the bucket.
        assert_eq!(bucket.ready_at(ready, 4096), ready);
    }

    #[test]
    fn refill_is_linear_and_capped() {
        let mut bucket = TokenBucket::new(TokenBucketConfig::new(1_000_000, 8192));
        bucket.charge(SimTime::ZERO, 8192);
        // 1 ms at 1 MB/s accrues 1000 bytes.
        assert_eq!(
            bucket.ready_at(SimTime::from_millis(1), 1000),
            SimTime::from_millis(1)
        );
        // Far in the future the bucket is full again, never over-full: a
        // 2×capacity charge still drains and the next byte must wait.
        let later = SimTime::from_millis(1_000);
        assert_eq!(bucket.ready_at(later, 16_384), later);
        bucket.charge(later, 16_384);
        assert!(bucket.ready_at(later, 1).as_nanos() > later.as_nanos());
    }

    #[test]
    fn oversized_record_cost_is_clamped_to_capacity() {
        let mut bucket = TokenBucket::new(TokenBucketConfig::new(1_000_000, 4096));
        // A 1 MB record can never fit a 4 KB bucket; it proceeds once the
        // bucket is full rather than waiting forever.
        assert_eq!(bucket.ready_at(SimTime::ZERO, 1 << 20), SimTime::ZERO);
        bucket.charge(SimTime::ZERO, 1 << 20);
        let next = bucket.ready_at(SimTime::ZERO, 4096);
        assert_eq!(next.as_nanos(), 4_096_000);
    }

    #[test]
    fn ready_at_is_monotone_in_now() {
        let mut bucket = TokenBucket::new(TokenBucketConfig::new(500_000, 16_384));
        bucket.charge(SimTime::ZERO, 16_384);
        let early = bucket.ready_at(at_us(10), 8192);
        let later = bucket.ready_at(at_us(20), 8192);
        assert!(later <= early.max(at_us(20)));
    }
}
