//! Multi-tenant serving front for the Sprinkler reproduction.
//!
//! Sprinkler's device scheduler maximizes chip-level parallelism *inside* one
//! SSD; this crate adds the layer the ROADMAP's serving-system north star
//! needs *above* it: N concurrent tenants — each with its own
//! [`TraceSource`](sprinkler_workloads::TraceSource) stream, footprint slice,
//! priority class, and burst budget — multiplexed into one admission-ordered
//! stream by a deterministic deficit-round-robin fair scheduler.
//!
//! The pieces compose left to right:
//!
//! * [`TenantSpec`] / [`PriorityClass`] — who the tenant is: service class
//!   (which sets the fair-share weight), optional weight override, optional
//!   [`TokenBucketConfig`] burst isolation, and a latency SLO.
//! * [`TokenBucket`] — exact integer-math burst isolation (bytes × ns).
//! * [`TenantMux`] — the fair-queueing multiplexer.  Implements
//!   `TraceSource`, so it can feed a single device, or the striped array
//!   frontend, anywhere a single trace could.
//! * [`run_tenants`] — one-call replay through an SSD with per-tenant metric
//!   lanes ([`sprinkler_ssd::TenantMetrics`]) and shared telemetry, returning
//!   a [`TenantOutcome`].
//!
//! Determinism is load-bearing: admission decisions use only integer byte and
//! nanosecond arithmetic over the tenant specs and their traces, so the same
//! inputs produce bit-identical admission schedules, metrics, and fairness
//! figures on every replay.
//!
//! # Example
//!
//! ```
//! use sprinkler_core::SchedulerKind;
//! use sprinkler_ssd::SsdConfig;
//! use sprinkler_tenants::{run_tenants, PriorityClass, TenantMux, TenantSpec};
//! use sprinkler_workloads::{FootprintSlice, SlicedSource, SyntheticSpec, TraceSource};
//!
//! let config = SsdConfig::small_test();
//! let slices = FootprintSlice::split_even(config.geometry.capacity_bytes(), 2, 4096);
//! let source = |i: usize, seed| {
//!     let spec = SyntheticSpec::new("t").with_footprint_mb(1);
//!     Box::new(SlicedSource::new(spec.stream(60, seed), slices[i])) as Box<dyn TraceSource + Send>
//! };
//! let mux = TenantMux::new(vec![
//!     (TenantSpec::new("web", PriorityClass::Interactive), source(0, 1)),
//!     (TenantSpec::new("scan", PriorityClass::Batch), source(1, 2)),
//! ]);
//! let outcome = run_tenants(&config, SchedulerKind::Spk3, mux).unwrap();
//! assert_eq!(outcome.metrics.io_count, 120);
//! assert_eq!(outcome.metrics.tenants.len(), 2);
//! let web = &outcome.metrics.tenants[0];
//! assert_eq!(web.name, "web");
//! assert!(web.p99_latency_ns > 0, "per-tenant p99 rides the shared buckets");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucket;
pub mod mux;
pub mod run;
pub mod spec;

pub use bucket::TokenBucket;
pub use mux::{
    jain_fairness_index, TaggedRecord, TenantAdmissionStats, TenantMux, DEFAULT_QUANTUM_BYTES,
};
pub use run::{run_tenants, TenantOutcome};
pub use spec::{PriorityClass, TenantSpec, TokenBucketConfig};
