//! The deficit-round-robin fair-share multiplexer.
//!
//! [`TenantMux`] merges N tenant [`TraceSource`]s into one admission-ordered
//! stream.  Each tenant holds at most its head-of-line record in memory, so
//! the mux adds O(tenants) state to a replay regardless of trace length, and
//! every decision uses integer time/byte math — the admission schedule is a
//! pure function of the tenant specs and their traces.
//!
//! # Scheduling model
//!
//! The mux maintains an **admission clock** that only moves forward, to the
//! earliest instant any backlogged tenant becomes *eligible* (its head has
//! arrived and its token bucket has credit).  Tenants take turns in
//! round-robin order; a turn grants the tenant one byte quantum scaled by its
//! weight, and the tenant emits head records while its accumulated deficit
//! covers them.  A tenant that drains (or whose head is not yet eligible)
//! forfeits its deficit, so credit cannot be hoarded across idle periods —
//! that, plus the per-tenant token bucket, is the burst-isolation story.
//!
//! Emitted records carry the admission clock as their arrival (keeping the
//! downstream [`TraceSource`] nondecreasing-arrival contract) while
//! [`TenantMux::next_tagged`] also reports the original submission time, so
//! per-tenant latency can be measured from submission through completion.

use std::sync::Arc;

use sprinkler_sim::{SimTime, TelemetryCounters};
use sprinkler_workloads::{TraceRecord, TraceSource};

use crate::bucket::TokenBucket;
use crate::spec::{TenantSpec, TokenBucketConfig};

/// Default per-weight-unit byte quantum granted on each round-robin turn.
pub const DEFAULT_QUANTUM_BYTES: u64 = 16 * 1024;

/// Admission-side statistics for one tenant, accumulated by the mux.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantAdmissionStats {
    /// Tenant name.
    pub name: String,
    /// Effective fair-share weight used by the scheduler.
    pub weight: u32,
    /// Records admitted into the merged stream.
    pub admitted: u64,
    /// Records admitted later than their submission time (the fair scheduler
    /// or the token bucket held them behind other work).
    pub deferrals: u64,
    /// Records whose admission was delayed by the token bucket specifically.
    pub throttles: u64,
    /// Payload bytes admitted.
    pub bytes: u64,
    /// Total submission-to-admission delay, ns.
    pub queued_delay_ns: u64,
    /// Largest single submission-to-admission delay, ns.
    pub max_queued_delay_ns: u64,
}

/// One record of the merged stream with its tenant attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedRecord {
    /// Index of the tenant lane the record belongs to.
    pub tenant: u32,
    /// The record, with its arrival rewritten to the admission instant.
    pub record: TraceRecord,
    /// The tenant's original submission time (pre-admission arrival).
    pub submitted: SimTime,
}

struct Lane<'a> {
    spec: TenantSpec,
    weight: u64,
    source: Box<dyn TraceSource + Send + 'a>,
    head: Option<TraceRecord>,
    exhausted: bool,
    bucket: TokenBucket,
    deficit: u64,
    /// True when the pending head's eligibility was pushed past both the
    /// clock and its arrival by the token bucket.
    head_throttled: bool,
    stats: TenantAdmissionStats,
}

impl std::fmt::Debug for Lane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("spec", &self.spec)
            .field("head", &self.head)
            .field("deficit", &self.deficit)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Lane<'_> {
    fn peek(&mut self) {
        if self.head.is_none() && !self.exhausted {
            self.head = self.source.next_record();
            if self.head.is_none() {
                self.exhausted = true;
            }
        }
    }

    /// Earliest instant ≥ max(clock, arrival) at which the head could be
    /// admitted, and whether the token bucket is the binding constraint.
    fn eligible_at(&mut self, clock: SimTime) -> Option<SimTime> {
        let head = self.head.as_ref()?;
        let base = clock.max(head.arrival);
        let ready = self.bucket.ready_at(base, head.bytes);
        // Sticky until the head is emitted: later re-evaluations at an
        // advanced clock see the bucket as ready and must not erase the fact
        // that it was the binding constraint earlier.
        if ready > base {
            self.head_throttled = true;
        }
        Some(ready)
    }
}

/// Deficit-round-robin fair-queueing multiplexer over N tenant trace sources.
///
/// Implements [`TraceSource`], so a mux can feed anything a single trace can —
/// including the striped array frontend.  Per-tenant attribution (the lane
/// index and original submission time) is only available through
/// [`TenantMux::next_tagged`]; the plain [`TraceSource::next_record`] view
/// drops it.
pub struct TenantMux<'a> {
    label: String,
    lanes: Vec<Lane<'a>>,
    quantum_bytes: u64,
    clock: SimTime,
    cursor: usize,
    granted: bool,
    next_id: u64,
    footprint: u64,
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl std::fmt::Debug for TenantMux<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantMux")
            .field("label", &self.label)
            .field("lanes", &self.lanes.len())
            .field("clock", &self.clock)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<'a> TenantMux<'a> {
    /// Builds a mux over `(spec, source)` pairs with the default quantum.
    ///
    /// Sources must honour the [`TraceSource`] contract individually; their
    /// footprints should already be disjoint slices (see
    /// `sprinkler_workloads::SlicedSource`) when tenants share one device.
    pub fn new(tenants: Vec<(TenantSpec, Box<dyn TraceSource + Send + 'a>)>) -> Self {
        Self::with_quantum(tenants, DEFAULT_QUANTUM_BYTES)
    }

    /// Like [`TenantMux::new`] with an explicit per-weight-unit byte quantum
    /// (clamped to ≥ 1; smaller quanta interleave more finely at the cost of
    /// more turns).
    pub fn with_quantum(
        tenants: Vec<(TenantSpec, Box<dyn TraceSource + Send + 'a>)>,
        quantum_bytes: u64,
    ) -> Self {
        let footprint = tenants
            .iter()
            .map(|(_, source)| source.footprint_bytes())
            .max()
            .unwrap_or(0);
        let lanes = tenants
            .into_iter()
            .map(|(spec, source)| {
                let weight = spec.effective_weight();
                let bucket =
                    TokenBucket::new(spec.bucket.unwrap_or_else(TokenBucketConfig::unlimited));
                Lane {
                    stats: TenantAdmissionStats {
                        name: spec.name.clone(),
                        weight,
                        ..TenantAdmissionStats::default()
                    },
                    weight: weight as u64,
                    source,
                    head: None,
                    exhausted: false,
                    bucket,
                    deficit: 0,
                    head_throttled: false,
                    spec,
                }
            })
            .collect();
        TenantMux {
            label: "tenant-mux".to_string(),
            lanes,
            quantum_bytes: quantum_bytes.max(1),
            clock: SimTime::ZERO,
            cursor: 0,
            granted: false,
            next_id: 0,
            footprint,
            telemetry: None,
        }
    }

    /// Number of tenant lanes.
    pub fn tenant_count(&self) -> usize {
        self.lanes.len()
    }

    /// The tenant specs, in lane order.
    pub fn specs(&self) -> Vec<TenantSpec> {
        self.lanes.iter().map(|lane| lane.spec.clone()).collect()
    }

    /// Shares a run's telemetry bundle so admissions/deferrals/throttles land
    /// in the same per-run snapshot as the device counters.
    pub fn attach_telemetry(&mut self, telemetry: &Arc<TelemetryCounters>) {
        self.telemetry = Some(Arc::clone(telemetry));
    }

    /// Per-tenant admission statistics accumulated so far, in lane order.
    pub fn admission_stats(&self) -> Vec<TenantAdmissionStats> {
        self.lanes.iter().map(|lane| lane.stats.clone()).collect()
    }

    fn advance_turn(&mut self) {
        self.cursor = (self.cursor + 1) % self.lanes.len().max(1);
        self.granted = false;
    }

    /// Pulls the next admitted record with tenant attribution, or `None` when
    /// every tenant is exhausted.
    pub fn next_tagged(&mut self) -> Option<TaggedRecord> {
        if self.lanes.is_empty() {
            return None;
        }
        for lane in &mut self.lanes {
            lane.peek();
        }
        // Advance the admission clock to the earliest eligible head, so the
        // round-robin scan below always finds at least one eligible lane.
        let clock = self.clock;
        let min_eligible = self
            .lanes
            .iter_mut()
            .filter_map(|lane| lane.eligible_at(clock))
            .min()?;
        self.clock = self.clock.max(min_eligible);

        // Deficit round-robin: each turn grants `quantum × weight` once, the
        // lane emits while deficit covers its eligible head, and ineligible
        // or drained lanes forfeit their deficit at turn end.  Terminates:
        // at least one lane is eligible at the clock and gains quantum every
        // full cycle, so its deficit eventually covers its head.
        loop {
            let clock = self.clock;
            let i = self.cursor;
            let quantum = self.quantum_bytes;
            let lane = &mut self.lanes[i];
            let ready = lane.eligible_at(clock);
            if let (Some(head), Some(ready)) = (lane.head, ready) {
                if ready > clock {
                    // Pending but not yet eligible: forfeit deficit, next turn.
                    lane.deficit = 0;
                    self.advance_turn();
                    continue;
                }
                if !self.granted {
                    lane.deficit = lane.deficit.saturating_add(quantum * lane.weight);
                    self.granted = true;
                }
                if lane.deficit >= head.bytes {
                    lane.deficit -= head.bytes;
                    lane.head = None;
                    lane.bucket.charge(clock, head.bytes);
                    let submitted = head.arrival;
                    let queued = clock.saturating_since(submitted).as_nanos();
                    lane.stats.admitted += 1;
                    lane.stats.bytes += head.bytes;
                    lane.stats.queued_delay_ns += queued;
                    lane.stats.max_queued_delay_ns = lane.stats.max_queued_delay_ns.max(queued);
                    if queued > 0 {
                        lane.stats.deferrals += 1;
                    }
                    if lane.head_throttled {
                        lane.stats.throttles += 1;
                    }
                    let throttled = lane.head_throttled;
                    lane.head_throttled = false;
                    if let Some(telemetry) = &self.telemetry {
                        TelemetryCounters::incr(&telemetry.tenant_admissions);
                        if queued > 0 {
                            TelemetryCounters::incr(&telemetry.tenant_deferrals);
                        }
                        if throttled {
                            TelemetryCounters::incr(&telemetry.tenant_throttles);
                        }
                    }
                    let mut record = head;
                    record.id = self.next_id;
                    record.arrival = clock;
                    self.next_id += 1;
                    return Some(TaggedRecord {
                        tenant: i as u32,
                        record,
                        submitted,
                    });
                }
                // Insufficient deficit for the head: the turn ends but the
                // deficit persists, so large records still make progress.
                self.advance_turn();
            } else {
                // Drained lanes forfeit their deficit.
                lane.deficit = 0;
                self.advance_turn();
            }
        }
    }
}

impl TraceSource for TenantMux<'_> {
    fn name(&self) -> &str {
        &self.label
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn remaining_hint(&self) -> Option<u64> {
        let mut total = 0u64;
        for lane in &self.lanes {
            total += lane.source.remaining_hint()? + u64::from(lane.head.is_some());
        }
        Some(total)
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        self.next_tagged().map(|tagged| tagged.record)
    }
}

/// Jain's fairness index over non-negative shares: 1.0 means perfectly even,
/// `1/n` means one share holds everything.  Empty or all-zero inputs read as
/// perfectly fair.
pub fn jain_fairness_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|s| s * s).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PriorityClass;
    use sprinkler_workloads::SyntheticSpec;

    fn tenant(name: &str, class: PriorityClass) -> TenantSpec {
        TenantSpec::new(name, class)
    }

    fn stream(seed: u64, count: u64) -> Box<dyn TraceSource + Send + 'static> {
        Box::new(
            SyntheticSpec::new("s")
                .with_footprint_mb(8)
                .with_mean_sizes_kb(8.0, 8.0)
                .with_bursts(4, 50.0)
                .stream(count, seed),
        )
    }

    #[test]
    fn merged_stream_is_nondecreasing_and_complete() {
        let mut mux = TenantMux::new(vec![
            (tenant("a", PriorityClass::Interactive), stream(1, 200)),
            (tenant("b", PriorityClass::Streaming), stream(2, 200)),
            (tenant("c", PriorityClass::Batch), stream(3, 200)),
        ]);
        let mut last = SimTime::ZERO;
        let mut count = 0;
        let mut per_tenant = [0u64; 3];
        while let Some(tagged) = mux.next_tagged() {
            assert!(tagged.record.arrival >= last, "admission order regressed");
            assert!(tagged.record.arrival >= tagged.submitted);
            last = tagged.record.arrival;
            per_tenant[tagged.tenant as usize] += 1;
            count += 1;
        }
        assert_eq!(count, 600, "no record lost or duplicated");
        assert_eq!(per_tenant, [200, 200, 200]);
        let stats = mux.admission_stats();
        assert_eq!(stats.iter().map(|s| s.admitted).sum::<u64>(), 600);
    }

    #[test]
    fn record_ids_are_globally_unique_and_dense() {
        let mut mux = TenantMux::new(vec![
            (tenant("a", PriorityClass::Interactive), stream(7, 50)),
            (tenant("b", PriorityClass::Batch), stream(8, 50)),
        ]);
        let mut next_expected = 0;
        while let Some(record) = mux.next_record() {
            assert_eq!(record.id, next_expected);
            next_expected += 1;
        }
        assert_eq!(next_expected, 100);
    }

    #[test]
    fn token_bucket_throttles_a_storming_tenant() {
        // The storm tenant submits everything at t=0; a tight bucket must
        // spread its admissions over time and count throttles.
        let spec = tenant("storm", PriorityClass::Batch).with_bucket(TokenBucketConfig::new(
            8 * 1024 * 1024, // 8 MB/s
            64 * 1024,       // 64 KB burst
        ));
        let storm = SyntheticSpec::new("storm")
            .with_footprint_mb(8)
            .with_mean_sizes_kb(64.0, 64.0)
            .with_bursts(1000, 1.0)
            .stream(300, 5);
        let mut mux = TenantMux::new(vec![(spec, Box::new(storm) as Box<dyn TraceSource + Send>)]);
        let mut last = SimTime::ZERO;
        while let Some(tagged) = mux.next_tagged() {
            last = tagged.record.arrival;
        }
        let stats = mux.admission_stats().remove(0);
        assert_eq!(stats.admitted, 300);
        assert!(stats.throttles > 0, "bucket never engaged");
        assert!(
            last > SimTime::from_millis(1),
            "admissions were not spread out: last at {last:?}"
        );
    }

    #[test]
    fn deterministic_replay_yields_identical_admission_schedules() {
        let build = || {
            TenantMux::new(vec![
                (tenant("a", PriorityClass::Interactive), stream(11, 120)),
                (
                    tenant("b", PriorityClass::Batch)
                        .with_bucket(TokenBucketConfig::new(16 * 1024 * 1024, 128 * 1024)),
                    stream(12, 120),
                ),
            ])
        };
        let mut first = build();
        let mut second = build();
        loop {
            let a = first.next_tagged();
            let b = second.next_tagged();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(first.admission_stats(), second.admission_stats());
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness_index(&[1.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert!((jain_fairness_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
