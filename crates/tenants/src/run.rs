//! One-call replay of a [`TenantMux`] through a single SSD.
//!
//! This is the tenant-aware twin of the experiments crate's `run_source`: it
//! wires the mux's telemetry into the device's per-run counter bundle,
//! registers one metrics lane per tenant, rewrites each admitted record into a
//! tenant-tagged [`HostRequest`], and replays through [`Ssd::run_stream`]'s
//! bounded-admission loop.  The returned [`TenantOutcome`] pairs the device
//! [`RunMetrics`] (now carrying `tenants` lanes) with the mux's admission-side
//! statistics.

use sprinkler_core::SchedulerKind;
use sprinkler_flash::Lpn;
use sprinkler_ssd::request::{Direction, HostRequest};
use sprinkler_ssd::{RunMetrics, Ssd, SsdConfig};
use sprinkler_workloads::TraceSource;

use crate::mux::{jain_fairness_index, TenantAdmissionStats, TenantMux};

/// The result of a multi-tenant replay: device metrics with per-tenant lanes,
/// plus the admission front's own per-tenant statistics.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Device-level run metrics; [`RunMetrics::tenants`] holds one lane per
    /// tenant, in mux lane order.
    pub metrics: RunMetrics,
    /// Admission statistics per tenant, in the same order.
    pub admission: Vec<TenantAdmissionStats>,
}

impl TenantOutcome {
    /// Each tenant's admitted bytes divided by its fair-share weight.  Under a
    /// backlogged workload, deficit round-robin drives these toward equality.
    pub fn weighted_byte_shares(&self) -> Vec<f64> {
        self.admission
            .iter()
            .map(|stats| stats.bytes as f64 / stats.weight.max(1) as f64)
            .collect()
    }

    /// Jain's fairness index over the weighted byte shares (1.0 = the byte
    /// split exactly matches the configured weights).
    pub fn fairness_index(&self) -> f64 {
        jain_fairness_index(&self.weighted_byte_shares())
    }
}

/// Replays a tenant mux through one scheduler on one SSD configuration.
///
/// # Errors
///
/// Returns a message when the mux's footprint exceeds the device's logical
/// capacity or the configuration fails validation — the multi-tenant front
/// requires tenant slices to be provisioned within capacity up front rather
/// than wrapped at replay time.
pub fn run_tenants(
    config: &SsdConfig,
    kind: SchedulerKind,
    mut mux: TenantMux<'_>,
) -> Result<TenantOutcome, String> {
    let capacity_bytes = config.geometry.capacity_bytes();
    if mux.footprint_bytes() > capacity_bytes {
        return Err(format!(
            "tenant footprint bound {} exceeds device logical capacity {}",
            mux.footprint_bytes(),
            capacity_bytes
        ));
    }
    let mut ssd = Ssd::new(config.clone(), kind.build())?;
    let lane_specs: Vec<_> = mux.specs().iter().map(|spec| spec.lane_spec()).collect();
    ssd.configure_tenants(&lane_specs);
    mux.attach_telemetry(ssd.telemetry());
    let page_size = config.page_size();
    let metrics = {
        let mux = &mut mux;
        ssd.run_stream(std::iter::from_fn(move || {
            let tagged = mux.next_tagged()?;
            let (lpn, pages) = tagged.record.pages(page_size);
            let direction = if tagged.record.op.is_read() {
                Direction::Read
            } else {
                Direction::Write
            };
            Some(
                HostRequest::new(
                    tagged.record.id,
                    tagged.record.arrival,
                    direction,
                    Lpn::new(lpn),
                    pages,
                )
                .with_tenant(tagged.tenant, tagged.submitted),
            )
        }))
    };
    Ok(TenantOutcome {
        metrics,
        admission: mux.admission_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PriorityClass, TenantSpec, TokenBucketConfig};
    use sprinkler_workloads::{FootprintSlice, SlicedSource, SyntheticSpec};

    fn mux_for(config: &SsdConfig, counts: [u64; 2]) -> TenantMux<'static> {
        let slices = FootprintSlice::split_even(config.geometry.capacity_bytes(), 2, 4096);
        let mk = |i: usize, count: u64, seed: u64| {
            let spec = SyntheticSpec::new("t")
                .with_footprint_mb((slices[i].len / (1024 * 1024)).max(1))
                .with_mean_sizes_kb(8.0, 8.0);
            Box::new(SlicedSource::new(spec.stream(count, seed), slices[i]))
                as Box<dyn TraceSource + Send>
        };
        TenantMux::new(vec![
            (
                TenantSpec::new("front", PriorityClass::Interactive)
                    .with_slo_latency_ns(50_000_000),
                mk(0, counts[0], 21),
            ),
            (
                TenantSpec::new("back", PriorityClass::Batch)
                    .with_bucket(TokenBucketConfig::new(64 * 1024 * 1024, 1 << 20)),
                mk(1, counts[1], 22),
            ),
        ])
    }

    #[test]
    fn run_attributes_every_io_to_a_tenant_lane() {
        let config = SsdConfig::small_test();
        let outcome =
            run_tenants(&config, SchedulerKind::Spk3, mux_for(&config, [150, 150])).unwrap();
        assert_eq!(outcome.metrics.io_count, 300);
        assert_eq!(outcome.metrics.tenants.len(), 2);
        let lane_total: u64 = outcome.metrics.tenants.iter().map(|t| t.io_count).sum();
        assert_eq!(
            lane_total, 300,
            "every completion lands in exactly one lane"
        );
        assert_eq!(outcome.metrics.tenants[0].name, "front");
        assert!(outcome.metrics.tenants[0].p99_latency_ns > 0);
        assert_eq!(
            outcome.metrics.telemetry.tenant_admissions, 300,
            "mux telemetry shares the run's counter bundle"
        );
        let fairness = outcome.fairness_index();
        assert!((0.0..=1.0).contains(&fairness));
    }

    #[test]
    fn per_tenant_latency_includes_admission_queueing() {
        let config = SsdConfig::small_test();
        let outcome =
            run_tenants(&config, SchedulerKind::Vas, mux_for(&config, [100, 100])).unwrap();
        for lane in &outcome.metrics.tenants {
            assert!(lane.io_count > 0);
            assert!(lane.avg_latency_ns > 0.0);
            assert!(lane.max_latency_ns as f64 >= lane.avg_latency_ns);
        }
        // Device-level mean measures from (post-admission) arrival, so the
        // submission-measured tenant means can only be larger or equal.
        let weighted: f64 = outcome
            .metrics
            .tenants
            .iter()
            .map(|t| t.avg_latency_ns * t.io_count as f64)
            .sum::<f64>()
            / outcome.metrics.io_count as f64;
        assert!(weighted + 1e-6 >= outcome.metrics.avg_latency_ns);
    }

    #[test]
    fn oversized_footprint_is_rejected() {
        let config = SsdConfig::small_test();
        let big = SyntheticSpec::new("big")
            .with_footprint_mb(1 << 20)
            .stream(1, 0);
        let mux = TenantMux::new(vec![(
            TenantSpec::new("big", PriorityClass::Batch),
            Box::new(big) as Box<dyn TraceSource + Send>,
        )]);
        let err = run_tenants(&config, SchedulerKind::Vas, mux).unwrap_err();
        assert!(err.contains("capacity"));
    }
}
