//! Tenant identity: priority classes, weights, SLOs, and burst-isolation
//! bucket configuration.

use serde::{Deserialize, Serialize};
use sprinkler_ssd::TenantLaneSpec;

/// The service class of a tenant, determining its default fair-share weight.
///
/// The classes mirror the serving-system taxonomy the ROADMAP targets:
/// latency-sensitive request/response traffic, deadline-driven sequential
/// streaming, and throughput-oriented background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Small, latency-critical I/O (request/response serving).
    Interactive,
    /// Deadline-driven sequential transfers (video-style streaming reads).
    Streaming,
    /// Throughput-oriented background work (scans, compactions, backfills).
    Batch,
}

impl PriorityClass {
    /// The class's default deficit-round-robin weight.  Interactive tenants
    /// receive 8× the per-round byte quantum of batch tenants.
    pub fn default_weight(self) -> u32 {
        match self {
            PriorityClass::Interactive => 8,
            PriorityClass::Streaming => 4,
            PriorityClass::Batch => 1,
        }
    }

    /// Short lowercase label (`"interactive"` / `"streaming"` / `"batch"`).
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Streaming => "streaming",
            PriorityClass::Batch => "batch",
        }
    }
}

/// Burst-isolation token bucket parameters for one tenant.
///
/// Rates are in bytes per simulated second; the bucket starts full.  A tenant
/// whose head-of-line record exceeds its accumulated tokens is held back until
/// the bucket refills, so one tenant's burst cannot monopolize admission no
/// matter how much backlog it presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBucketConfig {
    /// Sustained refill rate in bytes per second.  `0` disables throttling.
    pub rate_bytes_per_sec: u64,
    /// Maximum token accumulation in bytes (the burst allowance).
    pub capacity_bytes: u64,
}

impl TokenBucketConfig {
    /// An unthrottled bucket (rate 0 disables the mechanism).
    pub fn unlimited() -> Self {
        TokenBucketConfig {
            rate_bytes_per_sec: 0,
            capacity_bytes: 0,
        }
    }

    /// A bucket sustaining `rate_bytes_per_sec` with a burst allowance of
    /// `capacity_bytes`.
    pub fn new(rate_bytes_per_sec: u64, capacity_bytes: u64) -> Self {
        TokenBucketConfig {
            rate_bytes_per_sec,
            capacity_bytes,
        }
    }
}

/// Everything the admission front needs to know about one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name, carried into the per-tenant metrics lane.
    pub name: String,
    /// Service class (sets the default fair-share weight).
    pub class: PriorityClass,
    /// Explicit weight override; `None` uses the class default.
    pub weight: Option<u32>,
    /// Burst-isolation bucket; `None` means unthrottled.
    pub bucket: Option<TokenBucketConfig>,
    /// Latency SLO threshold in ns (submission to completion); 0 = no SLO.
    pub slo_latency_ns: u64,
}

impl TenantSpec {
    /// Creates a spec with the class's default weight, no bucket, and no SLO.
    pub fn new(name: impl Into<String>, class: PriorityClass) -> Self {
        TenantSpec {
            name: name.into(),
            class,
            weight: None,
            bucket: None,
            slo_latency_ns: 0,
        }
    }

    /// Overrides the fair-share weight (clamped to ≥ 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = Some(weight.max(1));
        self
    }

    /// Attaches a burst-isolation token bucket.
    pub fn with_bucket(mut self, bucket: TokenBucketConfig) -> Self {
        self.bucket = Some(bucket);
        self
    }

    /// Sets the latency SLO threshold in nanoseconds.
    pub fn with_slo_latency_ns(mut self, slo_ns: u64) -> Self {
        self.slo_latency_ns = slo_ns;
        self
    }

    /// The effective deficit-round-robin weight (override or class default).
    pub fn effective_weight(&self) -> u32 {
        self.weight
            .unwrap_or_else(|| self.class.default_weight())
            .max(1)
    }

    /// The metrics-lane registration for this tenant.
    pub fn lane_spec(&self) -> TenantLaneSpec {
        TenantLaneSpec {
            name: self.name.clone(),
            slo_latency_ns: self.slo_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_weights_are_ordered() {
        assert!(
            PriorityClass::Interactive.default_weight() > PriorityClass::Streaming.default_weight()
        );
        assert!(PriorityClass::Streaming.default_weight() > PriorityClass::Batch.default_weight());
    }

    #[test]
    fn weight_override_beats_class_default_and_clamps() {
        let spec = TenantSpec::new("t", PriorityClass::Batch).with_weight(0);
        assert_eq!(spec.effective_weight(), 1);
        let spec = TenantSpec::new("t", PriorityClass::Batch).with_weight(12);
        assert_eq!(spec.effective_weight(), 12);
        assert_eq!(
            TenantSpec::new("t", PriorityClass::Interactive).effective_weight(),
            8
        );
    }

    #[test]
    fn lane_spec_carries_name_and_slo() {
        let spec =
            TenantSpec::new("web", PriorityClass::Interactive).with_slo_latency_ns(5_000_000);
        let lane = spec.lane_spec();
        assert_eq!(lane.name, "web");
        assert_eq!(lane.slo_latency_ns, 5_000_000);
    }
}
