//! Workloads for the Sprinkler reproduction.
//!
//! The paper evaluates on sixteen enterprise traces from the MSR-Cambridge
//! collection (Table 1): corporate mail file servers (`cfs*`), a hardware monitor
//! (`hm*`), MSN file storage servers (`msnfs*`), and project directory servers
//! (`proj*`).  Those traces are not redistributable, so this crate provides:
//!
//! * a self-contained trace model ([`Trace`], [`TraceRecord`]),
//! * a synthetic generator ([`SyntheticSpec`]) parameterized by the statistics
//!   Table 1 publishes (volumes, request counts, randomness, transactional
//!   locality),
//! * the sixteen paper workloads as ready-made specifications ([`table1`]),
//! * fixed-transfer-size sweep generators for the microbenchmark figures
//!   (Figs 1, 15, 16, 17) in [`sweep`],
//! * and trace analysis used to regenerate Table 1 itself ([`stats`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod stats;
pub mod sweep;
pub mod synthetic;
pub mod table1;
pub mod trace;

pub use stats::TraceStats;
pub use sweep::SweepSpec;
pub use synthetic::{Locality, SyntheticSpec};
pub use table1::{paper_workloads, workload};
pub use trace::{Trace, TraceOp, TraceRecord};
