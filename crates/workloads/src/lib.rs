//! Workloads for the Sprinkler reproduction.
//!
//! The paper evaluates on sixteen enterprise traces from the MSR-Cambridge
//! collection (Table 1): corporate mail file servers (`cfs*`), a hardware monitor
//! (`hm*`), MSN file storage servers (`msnfs*`), and project directory servers
//! (`proj*`).  Those traces are not redistributable, so this crate provides:
//!
//! * a self-contained trace model ([`Trace`], [`TraceRecord`]),
//! * a streaming replay abstraction ([`TraceSource`]): every workload — in
//!   memory, generated, or parsed — is a pull-based record source with a
//!   declared footprint bound, so replays run in memory proportional to the
//!   outstanding I/Os rather than the trace length,
//! * a synthetic generator ([`SyntheticSpec`]) parameterized by the statistics
//!   Table 1 publishes (volumes, request counts, randomness, transactional
//!   locality), emitting eagerly ([`SyntheticSpec::generate`]) or lazily
//!   ([`SyntheticSpec::stream`]),
//! * the sixteen paper workloads as ready-made specifications ([`table1`]),
//! * fixed-transfer-size sweep generators for the microbenchmark figures
//!   (Figs 1, 15, 16, 17) in [`sweep`],
//! * a streaming text-trace parser ([`parse`]) for MSR-Cambridge-style CSV and
//!   blkparse-style lines, with an embedded sample corpus,
//! * and trace analysis used to regenerate Table 1 itself ([`stats`]).
//!
//! # Example
//!
//! Stream a synthetic workload and check its declared footprint bound:
//!
//! ```
//! use sprinkler_workloads::{SyntheticSpec, TraceSource};
//!
//! let mut source = SyntheticSpec::new("demo")
//!     .with_read_fraction(0.7)
//!     .stream(10, 42);
//! let footprint = source.footprint_bytes();
//! let mut total = 0;
//! while let Some(record) = source.next_record() {
//!     assert!(record.offset + record.bytes <= footprint);
//!     total += record.bytes;
//! }
//! assert!(total > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod parse;
pub mod slice;
pub mod source;
pub mod stats;
pub mod sweep;
pub mod synthetic;
pub mod table1;
pub mod trace;

pub use parse::{MalformedPolicy, ParseError, ParseStats, TextTraceSource, TraceFormat};
pub use slice::{FootprintSlice, SlicedSource};
pub use source::{TraceCursor, TraceSource};
pub use stats::TraceStats;
pub use sweep::{SweepSpec, SweepStream};
pub use synthetic::{Locality, SyntheticSpec, SyntheticStream};
pub use table1::{paper_workloads, workload};
pub use trace::{Trace, TraceOp, TraceRecord};
