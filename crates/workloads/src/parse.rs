//! Streaming text-trace parsing.
//!
//! The paper's evaluation replays enterprise block traces (the MSR-Cambridge
//! collection of Table 1).  Those traces ship as plain text; this module parses
//! the two dominant formats, line by line, into [`TraceRecord`]s — without ever
//! materializing the trace — and exposes the result as a [`TraceSource`]:
//!
//! * **MSR-Cambridge-style CSV** —
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, with the
//!   timestamp in Windows filetime ticks (100 ns units), `Type` one of
//!   `Read`/`Write` (case-insensitive), and `Offset`/`Size` in bytes.
//! * **blkparse-style lines** —
//!   `maj,min cpu seq time pid action rwbs sector + count [process]` as printed
//!   by `blkparse`; records are taken from `Q` (queue) actions, with the
//!   sector address and count in 512-byte sectors.  Lines with other actions
//!   (`G`, `P`, `D`, `C`, …) describe the same I/Os at later lifecycle stages
//!   and are ignored.
//!
//! Timestamps are rebased so the first record arrives at `t = 0`; arrival
//! times are clamped to be nondecreasing (the [`TraceSource`] contract),
//! counting every clamp.  Malformed lines are handled per
//! [`MalformedPolicy`]: skipped with a count, or treated as a hard
//! [`ParseError`].  Zero-sized records are skipped and counted separately.
//!
//! A small embedded sample corpus ([`SAMPLE_MSR_CSV`], [`SAMPLE_BLKPARSE`])
//! keeps the parser exercised by tests, examples, and CI without
//! redistributing the original traces, and [`write_msr_csv`] renders any trace
//! back into MSR CSV so generated workloads can round-trip through the parser.

use std::fmt;
use std::io::{BufRead, BufReader, Cursor};

use sprinkler_sim::SimTime;

use crate::source::TraceSource;
use crate::trace::{TraceOp, TraceRecord};

/// The sample MSR-Cambridge-style CSV corpus embedded with the crate.
pub const SAMPLE_MSR_CSV: &str = include_str!("../data/sample_msr.csv");

/// The sample blkparse-style corpus embedded with the crate.
pub const SAMPLE_BLKPARSE: &str = include_str!("../data/sample_blkparse.txt");

/// The text formats the parser understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// MSR-Cambridge-style CSV.
    MsrCsv,
    /// blkparse-style whitespace-separated lines.
    Blkparse,
}

impl TraceFormat {
    /// Guesses the format from one line: commas with ≥ 6 fields reads as CSV,
    /// anything else as blkparse.
    pub fn detect(line: &str) -> TraceFormat {
        if line.split(',').count() >= 6 {
            TraceFormat::MsrCsv
        } else {
            TraceFormat::Blkparse
        }
    }
}

/// What to do with a line that should be a record but does not parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MalformedPolicy {
    /// Skip the line and count it in [`ParseStats::skipped_malformed`].
    #[default]
    Skip,
    /// Stop the stream with a [`ParseError`] naming the line.
    Error,
}

/// Counters describing one parse run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Records successfully parsed and yielded.
    pub parsed: u64,
    /// Lines that should have been records but did not parse (only under
    /// [`MalformedPolicy::Skip`]; under `Error` the first one stops the run).
    pub skipped_malformed: u64,
    /// Well-formed records with `bytes == 0`, which describe no data movement.
    pub skipped_zero_sized: u64,
    /// Records whose timestamp ran backwards and was clamped to the previous
    /// arrival to honour the [`TraceSource`] ordering contract.
    pub clamped_out_of_order: u64,
    /// Lines that are legitimately not records: blank lines, `#` comments, and
    /// blkparse lines for non-queue actions.
    pub ignored: u64,
}

/// A malformed line under [`MalformedPolicy::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line_number: u64,
    /// The offending line.
    pub line: String,
    /// What failed to parse.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {} (in {:?})",
            self.line_number, self.message, self.line
        )
    }
}

impl std::error::Error for ParseError {}

/// A streaming [`TraceSource`] over a text trace.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::parse::{sample_msr, ParseStats};
/// use sprinkler_workloads::TraceSource;
///
/// let mut source = sample_msr();
/// let mut records = 0;
/// while let Some(record) = source.next_record() {
///     assert!(record.bytes > 0);
///     records += 1;
/// }
/// assert!(records > 0);
/// assert!(source.error().is_none());
/// assert_eq!(source.stats().parsed, records);
/// ```
#[derive(Debug)]
pub struct TextTraceSource<R> {
    name: String,
    reader: R,
    format: Option<TraceFormat>,
    policy: MalformedPolicy,
    /// Declared footprint bound; `u64::MAX` means "unbounded here, validated
    /// downstream at the replay boundary".
    footprint: u64,
    stats: ParseStats,
    line_number: u64,
    next_id: u64,
    /// Absolute nanoseconds of the first record; later records are rebased.
    base_nanos: Option<u64>,
    last_arrival: SimTime,
    error: Option<ParseError>,
    done: bool,
    line_buf: String,
}

impl TextTraceSource<Cursor<Vec<u8>>> {
    /// Parses from an in-memory string (format auto-detected per first record
    /// line).
    pub fn from_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        Self::new(name, Cursor::new(text.into().into_bytes()))
    }
}

impl TextTraceSource<BufReader<std::fs::File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be opened.
    pub fn from_path(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        Ok(Self::new(name, BufReader::new(std::fs::File::open(path)?)))
    }
}

impl<R: BufRead> TextTraceSource<R> {
    /// Creates a parser over any buffered reader; the format is auto-detected
    /// from the first line that is not blank or a comment.
    pub fn new(name: impl Into<String>, reader: R) -> Self {
        TextTraceSource {
            name: name.into(),
            reader,
            format: None,
            policy: MalformedPolicy::default(),
            footprint: u64::MAX,
            stats: ParseStats::default(),
            line_number: 0,
            next_id: 0,
            base_nanos: None,
            last_arrival: SimTime::ZERO,
            error: None,
            done: false,
            line_buf: String::new(),
        }
    }

    /// Fixes the format instead of auto-detecting it.
    pub fn with_format(mut self, format: TraceFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// Sets the malformed-line policy.
    pub fn with_policy(mut self, policy: MalformedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Declares a footprint bound: records with `offset + bytes` past it are
    /// treated like malformed lines (skipped with a count, or a hard error,
    /// per the policy).
    pub fn with_footprint_bytes(mut self, bound: u64) -> Self {
        self.footprint = bound.max(1);
        self
    }

    /// The counters so far (final once the stream is exhausted).
    pub fn stats(&self) -> ParseStats {
        self.stats
    }

    /// The error that stopped the stream, under [`MalformedPolicy::Error`].
    pub fn error(&self) -> Option<&ParseError> {
        self.error.as_ref()
    }

    /// The detected (or configured) format, once a record line has been seen.
    pub fn format(&self) -> Option<TraceFormat> {
        self.format
    }

    fn fail(&mut self, message: String) -> Option<TraceRecord> {
        match self.policy {
            MalformedPolicy::Skip => {
                self.stats.skipped_malformed += 1;
                None
            }
            MalformedPolicy::Error => {
                self.error = Some(ParseError {
                    line_number: self.line_number,
                    line: self.line_buf.trim_end().to_string(),
                    message,
                });
                self.done = true;
                None
            }
        }
    }
}

/// The classification of one input line.
enum LineOutcome {
    /// A record: `(absolute nanos, op, offset, bytes)`.
    Record(u64, TraceOp, u64, u64),
    /// Legitimately not a record (comment, blank, non-queue blkparse action).
    Ignored,
    /// Should have been a record but did not parse.
    Malformed(String),
}

/// Parses one trimmed, non-empty, non-comment line.  Free function on `&str`
/// (no per-line allocation beyond error messages on the failure path — this
/// runs once per line of multi-million-line traces).
fn parse_record_line(format: TraceFormat, line: &str) -> LineOutcome {
    match format {
        TraceFormat::MsrCsv => parse_msr_line(line),
        TraceFormat::Blkparse => parse_blkparse_line(line),
    }
}

fn parse_msr_line(line: &str) -> LineOutcome {
    // Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
    let mut fields = line.split(',').map(str::trim);
    let (Some(timestamp), Some(_host), Some(_disk), Some(op), Some(offset), Some(bytes)) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) else {
        return LineOutcome::Malformed("expected ≥ 6 CSV fields".to_string());
    };
    let Ok(ticks) = timestamp.parse::<u64>() else {
        return LineOutcome::Malformed(format!("bad timestamp {timestamp:?}"));
    };
    let op = if op.eq_ignore_ascii_case("read") || op.eq_ignore_ascii_case("r") {
        TraceOp::Read
    } else if op.eq_ignore_ascii_case("write") || op.eq_ignore_ascii_case("w") {
        TraceOp::Write
    } else {
        return LineOutcome::Malformed(format!("bad operation {op:?}"));
    };
    let Ok(offset) = offset.parse::<u64>() else {
        return LineOutcome::Malformed(format!("bad offset {offset:?}"));
    };
    let Ok(bytes) = bytes.parse::<u64>() else {
        return LineOutcome::Malformed(format!("bad size {bytes:?}"));
    };
    // Windows filetime ticks are 100 ns units.
    LineOutcome::Record(ticks.saturating_mul(100), op, offset, bytes)
}

fn parse_blkparse_line(line: &str) -> LineOutcome {
    // maj,min cpu seq time pid action rwbs sector + count [process]
    let mut fields = line.split_whitespace();
    let (
        Some(_majmin),
        Some(_cpu),
        Some(_seq),
        Some(time),
        Some(_pid),
        Some(action),
        Some(rwbs),
        Some(sector),
        Some(plus),
        Some(count),
    ) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    )
    else {
        return LineOutcome::Malformed("expected ≥ 10 blkparse fields".to_string());
    };
    if action != "Q" {
        // Later lifecycle stages of the same I/O; not new records.
        return LineOutcome::Ignored;
    }
    let op = if rwbs.contains('R') {
        TraceOp::Read
    } else if rwbs.contains('W') {
        TraceOp::Write
    } else {
        return LineOutcome::Malformed(format!("RWBS field {rwbs:?} is neither read nor write"));
    };
    let Some(nanos) = parse_blktrace_time(time) else {
        return LineOutcome::Malformed(format!("bad timestamp {time:?}"));
    };
    let Ok(sector) = sector.parse::<u64>() else {
        return LineOutcome::Malformed(format!("bad sector {sector:?}"));
    };
    if plus != "+" {
        return LineOutcome::Malformed("expected `sector + count`".to_string());
    }
    let Ok(count) = count.parse::<u64>() else {
        return LineOutcome::Malformed(format!("bad sector count {count:?}"));
    };
    // Sectors are 512-byte units; a sector address past u64 bytes is garbage.
    let (Some(offset), Some(bytes)) = (sector.checked_mul(512), count.checked_mul(512)) else {
        return LineOutcome::Malformed(format!(
            "sector range {sector} + {count} overflows the byte address space"
        ));
    };
    LineOutcome::Record(nanos, op, offset, bytes)
}

/// Parses a blkparse `seconds.nanoseconds` timestamp into nanoseconds.
fn parse_blktrace_time(field: &str) -> Option<u64> {
    let (secs, frac) = field.split_once('.').unwrap_or((field, "0"));
    let secs: u64 = secs.parse().ok()?;
    if frac.is_empty() || frac.len() > 9 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let nanos: u64 = frac.parse::<u64>().ok()? * 10u64.pow(9 - frac.len() as u32);
    secs.checked_mul(1_000_000_000)?.checked_add(nanos)
}

impl<R: BufRead> TraceSource for TextTraceSource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        while !self.done {
            self.line_buf.clear();
            match self.reader.read_line(&mut self.line_buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.line_number += 1;
                    self.fail(format!("I/O error reading trace: {e}"));
                    return None;
                }
            }
            self.line_number += 1;
            let line = self.line_buf.trim();
            if line.is_empty() || line.starts_with('#') {
                self.stats.ignored += 1;
                continue;
            }
            let format = *self.format.get_or_insert_with(|| TraceFormat::detect(line));
            let (abs_nanos, op, offset, bytes) = match parse_record_line(format, line) {
                LineOutcome::Record(nanos, op, offset, bytes) => (nanos, op, offset, bytes),
                LineOutcome::Ignored => {
                    self.stats.ignored += 1;
                    continue;
                }
                LineOutcome::Malformed(message) => {
                    self.fail(message);
                    continue;
                }
            };
            if bytes == 0 {
                self.stats.skipped_zero_sized += 1;
                continue;
            }
            // A record whose extent does not even fit the u64 byte address
            // space is malformed, not merely out of footprint; checked math
            // here keeps `TraceRecord::pages` downstream from overflowing.
            let Some(end) = offset.checked_add(bytes) else {
                self.fail(format!(
                    "record extent {offset} + {bytes} overflows the byte address space"
                ));
                continue;
            };
            if end > self.footprint {
                self.fail(format!(
                    "record [{offset}, {end}) exceeds the declared footprint {}",
                    self.footprint
                ));
                continue;
            }
            // Rebase to the first record and clamp to nondecreasing arrivals
            // (timestamps before the base count as out of order too).
            let base = *self.base_nanos.get_or_insert(abs_nanos);
            let rebased = abs_nanos as i128 - base as i128;
            let arrival = if rebased < self.last_arrival.as_nanos() as i128 {
                if self.next_id > 0 {
                    self.stats.clamped_out_of_order += 1;
                }
                self.last_arrival
            } else {
                SimTime::from_nanos(rebased as u64)
            };
            self.last_arrival = arrival;
            let id = self.next_id;
            self.next_id += 1;
            self.stats.parsed += 1;
            return Some(TraceRecord {
                id,
                arrival,
                op,
                offset,
                bytes,
            });
        }
        None
    }
}

/// The embedded MSR-Cambridge-style sample corpus as a streaming source.
pub fn sample_msr() -> TextTraceSource<Cursor<Vec<u8>>> {
    TextTraceSource::from_text("sample_msr", SAMPLE_MSR_CSV).with_format(TraceFormat::MsrCsv)
}

/// The embedded blkparse-style sample corpus as a streaming source.
pub fn sample_blkparse() -> TextTraceSource<Cursor<Vec<u8>>> {
    TextTraceSource::from_text("sample_blkparse", SAMPLE_BLKPARSE)
        .with_format(TraceFormat::Blkparse)
}

/// Windows filetime base used by [`write_msr_csv`]; an arbitrary tick count
/// large enough to look like a real MSR timestamp.
const MSR_BASE_TICKS: u64 = 128_166_372_000_000_000;

/// Renders records as MSR-Cambridge-style CSV, the inverse of the
/// [`TraceFormat::MsrCsv`] parser: arrival times become filetime ticks
/// relative to a fixed base (so the parser rebases them back to `t = 0`).
/// Sub-tick (< 100 ns) arrival components are rounded down — byte-exact
/// round-tripping holds for offsets, sizes, operations, and arrival *order*.
pub fn write_msr_csv<'a>(
    hostname: &str,
    records: impl IntoIterator<Item = &'a TraceRecord>,
) -> String {
    let mut out = String::new();
    for record in records {
        let ticks = MSR_BASE_TICKS + record.arrival.as_nanos() / 100;
        let op = if record.op.is_read() { "Read" } else { "Write" };
        out.push_str(&format!(
            "{ticks},{hostname},0,{op},{},{},0\n",
            record.offset, record.bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(source: &mut impl TraceSource) -> Vec<TraceRecord> {
        std::iter::from_fn(|| source.next_record()).collect()
    }

    #[test]
    fn msr_sample_corpus_parses_cleanly() {
        let mut source = sample_msr();
        let records = drain(&mut source);
        assert!(records.len() >= 20, "corpus has {} records", records.len());
        assert!(source.error().is_none());
        let stats = source.stats();
        assert_eq!(stats.parsed, records.len() as u64);
        assert_eq!(stats.skipped_malformed, 0);
        // First record is rebased to t = 0; arrivals never run backwards.
        assert_eq!(records[0].arrival, SimTime::ZERO);
        assert!(records.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(records.iter().any(|r| r.op.is_read()));
        assert!(records.iter().any(|r| !r.op.is_read()));
        assert!(records.iter().all(|r| r.bytes > 0));
        // Ids are assigned in stream order.
        assert!(records.iter().enumerate().all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn blkparse_sample_corpus_parses_cleanly() {
        let mut source = sample_blkparse();
        let records = drain(&mut source);
        assert!(records.len() >= 12, "corpus has {} records", records.len());
        assert!(source.error().is_none());
        assert_eq!(source.stats().skipped_malformed, 0);
        assert!(
            source.stats().ignored > 0,
            "non-Q actions and comments are ignored"
        );
        // Sector math: offsets and sizes are 512-byte multiples.
        assert!(records.iter().all(|r| r.offset % 512 == 0));
        assert!(records.iter().all(|r| r.bytes % 512 == 0 && r.bytes > 0));
        assert!(records.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn format_detection_distinguishes_the_corpora() {
        let msr_line = SAMPLE_MSR_CSV.lines().next().unwrap();
        assert_eq!(TraceFormat::detect(msr_line), TraceFormat::MsrCsv);
        let blk_line = SAMPLE_BLKPARSE
            .lines()
            .find(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .unwrap();
        assert_eq!(TraceFormat::detect(blk_line), TraceFormat::Blkparse);
        // Auto-detection (no with_format) parses the MSR corpus identically.
        let auto = drain(&mut TextTraceSource::from_text("auto", SAMPLE_MSR_CSV));
        let fixed = drain(&mut sample_msr());
        assert_eq!(auto, fixed);
    }

    #[test]
    fn malformed_lines_skip_with_count_by_default() {
        let text = "128166372003061629,hm,1,Read,4096,8192,100\n\
                    not,a,record,at,all,x\n\
                    128166372003061700,hm,1,Write,0,512,100\n";
        let mut source = TextTraceSource::from_text("m", text);
        let records = drain(&mut source);
        assert_eq!(records.len(), 2);
        assert_eq!(source.stats().skipped_malformed, 1);
        assert!(source.error().is_none());
    }

    #[test]
    fn malformed_lines_stop_the_stream_under_error_policy() {
        let text = "128166372003061629,hm,1,Read,4096,8192,100\n\
                    garbage,line,here,x,y,z\n\
                    128166372003061700,hm,1,Write,0,512,100\n";
        let mut source = TextTraceSource::from_text("m", text).with_policy(MalformedPolicy::Error);
        assert!(source.next_record().is_some());
        assert!(source.next_record().is_none(), "stream stops at the error");
        let error = source.error().expect("error is reported");
        assert_eq!(error.line_number, 2);
        assert!(error.to_string().contains("line 2"));
        assert!(source.next_record().is_none(), "the stop is sticky");
        assert_eq!(source.stats().parsed, 1);
    }

    #[test]
    fn zero_sized_records_are_skipped_and_counted() {
        let text = "100,hm,0,Read,0,0,0\n200,hm,0,Read,0,4096,0\n";
        let mut source = TextTraceSource::from_text("z", text);
        let records = drain(&mut source);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].bytes, 4096);
        assert_eq!(source.stats().skipped_zero_sized, 1);
    }

    #[test]
    fn empty_trace_parses_to_nothing() {
        for text in ["", "\n\n", "# only a comment\n"] {
            let mut source = TextTraceSource::from_text("e", text);
            assert!(source.next_record().is_none());
            assert!(source.error().is_none());
            assert_eq!(source.stats().parsed, 0);
        }
    }

    #[test]
    fn out_of_order_timestamps_are_clamped_monotonic() {
        let text = "2000,hm,0,Read,0,512,0\n\
                    1000,hm,0,Read,512,512,0\n\
                    3000,hm,0,Read,1024,512,0\n";
        let mut source = TextTraceSource::from_text("o", text);
        let records = drain(&mut source);
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(source.stats().clamped_out_of_order, 1);
        // 3000 ticks - 2000 ticks = 1000 ticks = 100 µs.
        assert_eq!(records[2].arrival, SimTime::from_nanos(100_000));
    }

    #[test]
    fn declared_footprint_bound_rejects_oversized_records() {
        let text = "100,hm,0,Read,0,4096,0\n200,hm,0,Read,8192,4096,0\n";
        let mut source = TextTraceSource::from_text("f", text).with_footprint_bytes(8192);
        let records = drain(&mut source);
        assert_eq!(records.len(), 1, "the spilling record is dropped");
        assert_eq!(source.stats().skipped_malformed, 1);
        assert_eq!(source.footprint_bytes(), 8192);

        let mut strict = TextTraceSource::from_text("f", text)
            .with_footprint_bytes(8192)
            .with_policy(MalformedPolicy::Error);
        assert!(strict.next_record().is_some());
        assert!(strict.next_record().is_none());
        assert!(strict.error().unwrap().message.contains("footprint"));
    }

    #[test]
    fn msr_writer_round_trips_through_the_parser() {
        let trace = crate::SyntheticSpec::new("rt")
            .with_footprint_mb(64)
            .generate(200, 5);
        let csv = write_msr_csv("rt-host", trace.iter());
        let mut source = TextTraceSource::from_text("rt", csv).with_policy(MalformedPolicy::Error);
        let parsed = drain(&mut source);
        assert!(source.error().is_none());
        assert_eq!(parsed.len(), trace.len());
        for (original, back) in trace.iter().zip(&parsed) {
            assert_eq!(original.op, back.op);
            assert_eq!(original.offset, back.offset);
            assert_eq!(original.bytes, back.bytes);
            // Arrivals survive up to the 100 ns filetime tick.
            let delta = original.arrival.as_nanos() as i128 - back.arrival.as_nanos() as i128;
            assert!((0..100).contains(&delta), "arrival drifted by {delta} ns");
        }
    }

    /// Overflowing extents are malformed lines, not records: without checked
    /// math a `u64::MAX` offset would wrap in `TraceRecord::pages` and slip
    /// past the capacity boundary as an arbitrary aliased request.
    #[test]
    fn overflowing_extents_are_malformed_not_wrapped() {
        let max = u64::MAX;
        let text = format!(
            "100,hm,0,Read,{max},512,0\n\
             200,hm,0,Read,0,4096,0\n"
        );
        let mut source = TextTraceSource::from_text("ovf", text.clone());
        let records = drain(&mut source);
        assert_eq!(records.len(), 1, "only the sane record survives");
        assert_eq!(source.stats().skipped_malformed, 1);

        let mut strict =
            TextTraceSource::from_text("ovf", text).with_policy(MalformedPolicy::Error);
        assert!(strict.next_record().is_none());
        assert!(strict
            .error()
            .unwrap()
            .message
            .contains("overflows the byte address space"));

        // blkparse sector math overflows are caught at the multiply.
        let blk = format!("8,0 0 1 0.000000000 1 Q R {} + 9 [x]\n", u64::MAX / 512 + 1);
        let mut source = TextTraceSource::from_text("ovf", blk).with_format(TraceFormat::Blkparse);
        assert!(source.next_record().is_none());
        assert_eq!(source.stats().skipped_malformed, 1);
    }

    #[test]
    fn blktrace_time_parsing() {
        assert_eq!(parse_blktrace_time("0.000000000"), Some(0));
        assert_eq!(parse_blktrace_time("1.5"), Some(1_500_000_000));
        assert_eq!(parse_blktrace_time("2"), Some(2_000_000_000));
        assert_eq!(parse_blktrace_time("0.000001234"), Some(1_234));
        assert_eq!(parse_blktrace_time("x.y"), None);
        assert_eq!(parse_blktrace_time("1.0000000001"), None);
    }
}
