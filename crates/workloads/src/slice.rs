//! Footprint slicing: rebasing a trace source into a tenant's address window.
//!
//! The multi-tenant admission front gives each tenant an exclusive, contiguous
//! byte range of the device's logical address space.  [`FootprintSlice`]
//! describes one such window and [`SlicedSource`] adapts any [`TraceSource`]
//! into it: every record's offset is rebased by the slice base, and the
//! adapter's declared footprint bound becomes `base + len`, so the replay
//! boundary's capacity validation keeps working unchanged.  Records of the
//! inner source must already respect the slice length — the adapter asserts
//! this in debug builds and clamps in release, so a misconfigured tenant can
//! never bleed into a neighbour's window.

use crate::source::TraceSource;
use crate::trace::TraceRecord;

/// One tenant's exclusive, contiguous window of the logical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintSlice {
    /// First byte of the window.
    pub base: u64,
    /// Window length in bytes (exclusive bound on intra-slice `offset + bytes`).
    pub len: u64,
}

impl FootprintSlice {
    /// Creates a slice starting at `base`, `len` bytes long.
    pub fn new(base: u64, len: u64) -> Self {
        FootprintSlice { base, len }
    }

    /// Splits `total` bytes into `n` equal page-aligned slices (the remainder
    /// goes to the last slice).  Returns an empty vector when `n` is 0.
    pub fn split_even(total: u64, n: usize, page_size: u64) -> Vec<FootprintSlice> {
        if n == 0 {
            return Vec::new();
        }
        let pages = total / page_size.max(1);
        let per = (pages / n as u64) * page_size.max(1);
        let mut slices = Vec::with_capacity(n);
        let mut base = 0;
        for i in 0..n {
            let len = if i + 1 == n { total - base } else { per };
            slices.push(FootprintSlice::new(base, len));
            base += len;
        }
        slices
    }

    /// Exclusive upper bound of the window (`base + len`).
    pub fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// A [`TraceSource`] adapter that rebases an inner source into a
/// [`FootprintSlice`].
///
/// The inner source generates offsets in `[0, slice.len)`; the adapter shifts
/// them by `slice.base` and reports `slice.end()` as its footprint bound.
#[derive(Debug)]
pub struct SlicedSource<S> {
    inner: S,
    slice: FootprintSlice,
}

impl<S: TraceSource> SlicedSource<S> {
    /// Wraps `inner`, rebasing its records into `slice`.
    ///
    /// The inner source's own footprint bound must fit the slice; this is the
    /// static form of the per-record check and fails fast at construction.
    pub fn new(inner: S, slice: FootprintSlice) -> Self {
        assert!(
            inner.footprint_bytes() <= slice.len,
            "source footprint {} exceeds slice length {}",
            inner.footprint_bytes(),
            slice.len
        );
        SlicedSource { inner, slice }
    }

    /// The window this source is confined to.
    pub fn slice(&self) -> FootprintSlice {
        self.slice
    }

    /// Consumes the adapter, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSource> TraceSource for SlicedSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn footprint_bytes(&self) -> u64 {
        self.slice.end()
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.inner.remaining_hint()
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        let mut record = self.inner.next_record()?;
        debug_assert!(
            record.offset + record.bytes <= self.slice.len,
            "record {}..{} escapes slice of length {}",
            record.offset,
            record.offset + record.bytes,
            self.slice.len
        );
        // Release-mode clamp: confine a stray record to the window rather than
        // corrupting a neighbouring tenant's address range.
        if record.offset + record.bytes > self.slice.len {
            record.offset = record.offset.min(self.slice.len.saturating_sub(1));
            record.bytes = record.bytes.min(self.slice.len - record.offset);
        }
        record.offset += self.slice.base;
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn split_even_covers_the_whole_range_without_overlap() {
        let total = 64 * 1024 * 1024 + 4096;
        let slices = FootprintSlice::split_even(total, 3, 4096);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].base, 0);
        for pair in slices.windows(2) {
            assert_eq!(pair[0].end(), pair[1].base, "slices tile contiguously");
            assert_eq!(pair[0].base % 4096, 0, "slice bases are page aligned");
        }
        assert_eq!(slices.last().unwrap().end(), total);
    }

    #[test]
    fn split_even_zero_tenants_is_empty() {
        assert!(FootprintSlice::split_even(1 << 20, 0, 4096).is_empty());
    }

    #[test]
    fn sliced_source_rebases_offsets_and_footprint() {
        let spec = SyntheticSpec::new("t").with_footprint_mb(4);
        let slice = FootprintSlice::new(32 * 1024 * 1024, 8 * 1024 * 1024);
        let mut source = SlicedSource::new(spec.stream(50, 11), slice);
        assert_eq!(source.footprint_bytes(), slice.end());
        let mut count = 0;
        while let Some(record) = source.next_record() {
            assert!(record.offset >= slice.base, "offset rebased into the slice");
            assert!(record.offset + record.bytes <= slice.end());
            count += 1;
        }
        assert_eq!(count, 50);
    }

    #[test]
    #[should_panic(expected = "exceeds slice length")]
    fn oversized_source_is_rejected_at_construction() {
        let spec = SyntheticSpec::new("big").with_footprint_mb(64);
        let _ = SlicedSource::new(spec.stream(1, 0), FootprintSlice::new(0, 1024));
    }
}
