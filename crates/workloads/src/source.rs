//! Pull-based trace sources.
//!
//! The paper's evaluation replays multi-million-I/O enterprise traces
//! (Table 1); materializing such a trace as a `Vec` before replay costs memory
//! proportional to the trace length.  [`TraceSource`] is the streaming
//! alternative: a pull-based producer of [`TraceRecord`]s that the replay path
//! consumes one record at a time, so the simulator's memory footprint is
//! bounded by the *outstanding* I/Os, not the trace length.
//!
//! Every source declares a **footprint bound**: an exclusive upper limit on
//! `offset + bytes` across all records it will ever yield.  The replay boundary
//! checks that bound (and every individual record) against the device's logical
//! capacity, so a trace can no longer silently address pages past the capacity
//! of the simulated SSD.
//!
//! Implementations in this crate:
//!
//! * [`TraceCursor`] — streams an in-memory [`Trace`] (the original replay
//!   representation, kept for tests and small workloads);
//! * [`crate::synthetic::SyntheticStream`] — the Table 1 synthetic generator,
//!   emitting lazily;
//! * [`crate::sweep::SweepStream`] — the fixed-transfer-size microbenchmark
//!   generator, emitting lazily;
//! * [`crate::parse::TextTraceSource`] — the text-trace parser for
//!   MSR-Cambridge-style CSV and blkparse-style lines.

use crate::trace::{Trace, TraceRecord};

/// A pull-based, time-ordered producer of trace records.
///
/// # Contract
///
/// * Records are yielded in nondecreasing arrival order.
/// * Every yielded record satisfies `offset + bytes <= footprint_bytes()`.
/// * `next_record` returns `None` once the source is exhausted and keeps
///   returning `None` afterwards.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::{SyntheticSpec, TraceSource};
///
/// let spec = SyntheticSpec::new("stream").with_footprint_mb(64);
/// let mut source = spec.stream(100, 7);
/// assert_eq!(source.footprint_bytes(), 64 * 1024 * 1024);
/// let mut count = 0;
/// while let Some(record) = source.next_record() {
///     assert!(record.offset + record.bytes <= source.footprint_bytes());
///     count += 1;
/// }
/// assert_eq!(count, 100);
/// ```
pub trait TraceSource {
    /// The workload's name (e.g. `"msnfs1"` or `"sample_msr"`).
    fn name(&self) -> &str;

    /// Exclusive upper bound on `offset + bytes` over every record this source
    /// yields.
    fn footprint_bytes(&self) -> u64;

    /// Number of records still to come, when the source knows it up front.
    /// Streaming parsers return `None`.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Pulls the next record, or `None` when the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Drains the source into an in-memory [`Trace`] (records re-sorted by
    /// arrival, as [`Trace::new`] guarantees).  Useful for tests and for small
    /// traces that are replayed repeatedly.
    fn collect_trace(&mut self) -> Trace
    where
        Self: Sized,
    {
        let mut records = Vec::new();
        while let Some(record) = self.next_record() {
            records.push(record);
        }
        Trace::new(self.name().to_string(), records)
    }
}

/// Streams the records of an in-memory [`Trace`], fulfilling the
/// [`TraceSource`] contract (the trace's records are already sorted by
/// arrival; the footprint bound is the max `offset + bytes` of the records).
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    footprint: u64,
    next: usize,
}

impl<'a> TraceCursor<'a> {
    /// Creates a cursor over `trace`.  O(trace length) once, to compute the
    /// footprint bound.
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor {
            trace,
            footprint: trace.footprint_bytes(),
            next: 0,
        }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.trace.len() - self.next) as u64)
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        let record = self.trace.records().get(self.next).copied()?;
        self.next += 1;
        Some(record)
    }
}

impl Trace {
    /// A streaming [`TraceSource`] view of this trace.
    pub fn source(&self) -> TraceCursor<'_> {
        TraceCursor::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;
    use sprinkler_sim::SimTime;

    fn rec(id: u64, at_us: u64, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id,
            arrival: SimTime::from_micros(at_us),
            op: TraceOp::Read,
            offset,
            bytes,
        }
    }

    #[test]
    fn cursor_streams_records_in_order_and_reports_footprint() {
        let trace = Trace::new("t", vec![rec(0, 0, 4096, 2048), rec(1, 5, 0, 1024)]);
        let mut source = trace.source();
        assert_eq!(source.name(), "t");
        assert_eq!(source.footprint_bytes(), 4096 + 2048);
        assert_eq!(source.remaining_hint(), Some(2));
        let first = source.next_record().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(source.remaining_hint(), Some(1));
        assert_eq!(source.next_record().unwrap().id, 1);
        assert!(source.next_record().is_none());
        assert!(source.next_record().is_none(), "exhaustion is sticky");
        assert_eq!(source.remaining_hint(), Some(0));
    }

    #[test]
    fn cursor_of_empty_trace_is_immediately_exhausted() {
        let trace = Trace::new("empty", vec![]);
        let mut source = trace.source();
        assert_eq!(source.footprint_bytes(), 0);
        assert!(source.next_record().is_none());
    }

    #[test]
    fn collect_trace_round_trips() {
        let trace = Trace::new("t", vec![rec(0, 0, 0, 512), rec(1, 3, 8192, 512)]);
        let collected = trace.source().collect_trace();
        assert_eq!(collected, trace);
    }
}
