//! Trace analysis: the statistics Table 1 reports, recomputed from a trace.

use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Summary statistics of a trace, mirroring the columns of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Number of read requests.
    pub read_count: u64,
    /// Number of write requests.
    pub write_count: u64,
    /// Mean read size in KB.
    pub read_mean_kb: f64,
    /// Mean write size in KB.
    pub write_mean_kb: f64,
    /// Fraction of reads that are not sequential to the previous read.
    pub read_randomness: f64,
    /// Fraction of writes that are not sequential to the previous write.
    pub write_randomness: f64,
}

impl TraceStats {
    /// Analyzes a trace.
    pub fn analyze(trace: &Trace) -> Self {
        let mut stats = TraceStats::default();
        let mut last_read_end: Option<u64> = None;
        let mut last_write_end: Option<u64> = None;
        let mut random_reads = 0u64;
        let mut random_writes = 0u64;
        for record in trace.iter() {
            if record.op.is_read() {
                stats.read_bytes += record.bytes;
                stats.read_count += 1;
                if last_read_end != Some(record.offset) {
                    random_reads += 1;
                }
                last_read_end = Some(record.offset + record.bytes);
            } else {
                stats.write_bytes += record.bytes;
                stats.write_count += 1;
                if last_write_end != Some(record.offset) {
                    random_writes += 1;
                }
                last_write_end = Some(record.offset + record.bytes);
            }
        }
        if stats.read_count > 0 {
            stats.read_mean_kb = stats.read_bytes as f64 / 1024.0 / stats.read_count as f64;
            stats.read_randomness = random_reads as f64 / stats.read_count as f64;
        }
        if stats.write_count > 0 {
            stats.write_mean_kb = stats.write_bytes as f64 / 1024.0 / stats.write_count as f64;
            stats.write_randomness = random_writes as f64 / stats.write_count as f64;
        }
        stats
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(&self) -> f64 {
        let total = self.read_count + self.write_count;
        if total == 0 {
            0.0
        } else {
            self.read_count as f64 / total as f64
        }
    }

    /// Total transferred MB (both directions).
    pub fn total_mb(&self) -> f64 {
        (self.read_bytes + self.write_bytes) as f64 / 1024.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;
    use crate::trace::{TraceOp, TraceRecord};
    use sprinkler_sim::SimTime;

    fn rec(id: u64, op: TraceOp, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id,
            arrival: SimTime::from_micros(id),
            op,
            offset,
            bytes,
        }
    }

    #[test]
    fn empty_trace_has_zero_stats() {
        let stats = TraceStats::analyze(&Trace::new("e", vec![]));
        assert_eq!(stats.read_count, 0);
        assert_eq!(stats.read_fraction(), 0.0);
        assert_eq!(stats.total_mb(), 0.0);
    }

    #[test]
    fn counts_and_volumes_are_split_by_direction() {
        let trace = Trace::new(
            "t",
            vec![
                rec(0, TraceOp::Read, 0, 8192),
                rec(1, TraceOp::Write, 0, 4096),
                rec(2, TraceOp::Read, 8192, 8192),
            ],
        );
        let stats = TraceStats::analyze(&trace);
        assert_eq!(stats.read_count, 2);
        assert_eq!(stats.write_count, 1);
        assert_eq!(stats.read_bytes, 16384);
        assert_eq!(stats.write_bytes, 4096);
        assert!((stats.read_mean_kb - 8.0).abs() < 1e-9);
        assert!((stats.write_mean_kb - 4.0).abs() < 1e-9);
        assert!((stats.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!(stats.total_mb() > 0.0);
    }

    #[test]
    fn sequential_run_has_low_randomness() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(rec(i, TraceOp::Read, i * 4096, 4096));
        }
        let stats = TraceStats::analyze(&Trace::new("seq", records));
        // Only the first read is "random" (no predecessor).
        assert!(stats.read_randomness < 0.02);
    }

    #[test]
    fn random_workload_has_high_randomness() {
        let spec = SyntheticSpec::new("r").with_randomness(0.95, 0.95);
        let stats = TraceStats::analyze(&spec.generate(2000, 3));
        assert!(stats.read_randomness > 0.8, "{}", stats.read_randomness);
        assert!(stats.write_randomness > 0.8);
    }

    #[test]
    fn analyzed_randomness_tracks_the_spec() {
        let low = SyntheticSpec::new("low")
            .with_randomness(0.1, 0.1)
            .with_locality(crate::synthetic::Locality::Low);
        let high = SyntheticSpec::new("high")
            .with_randomness(0.95, 0.95)
            .with_locality(crate::synthetic::Locality::Low);
        let low_stats = TraceStats::analyze(&low.generate(3000, 5));
        let high_stats = TraceStats::analyze(&high.generate(3000, 5));
        assert!(low_stats.read_randomness < high_stats.read_randomness);
    }
}
