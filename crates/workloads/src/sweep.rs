//! Fixed-transfer-size microbenchmarks.
//!
//! Figures 1, 15, 16, and 17 sweep the data transfer size from 4 KB to 4 MB while
//! keeping the access pattern simple (random offsets, saturating arrivals).  The
//! [`SweepSpec`] generator produces those workloads.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{DeterministicRng, Duration, SimTime};

use crate::trace::{Trace, TraceOp, TraceRecord};

/// A fixed-transfer-size microbenchmark.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::SweepSpec;
///
/// let trace = SweepSpec::new(64).with_read_fraction(1.0).generate(100, 1);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.iter().all(|r| r.bytes == 64 * 1024));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Transfer size in KB (every request has exactly this size).
    pub transfer_kb: u64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Logical footprint in MB offsets are drawn from.
    pub footprint_mb: u64,
    /// Requests issued back-to-back per burst.
    pub burst_size: u32,
    /// Mean gap between bursts in microseconds.
    pub mean_burst_gap_us: f64,
}

impl SweepSpec {
    /// Creates a read-heavy sweep point at the given transfer size.
    pub fn new(transfer_kb: u64) -> Self {
        SweepSpec {
            transfer_kb: transfer_kb.max(1),
            read_fraction: 1.0,
            footprint_mb: 4096,
            burst_size: 8,
            mean_burst_gap_us: 100.0,
        }
    }

    /// Sets the read fraction.
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the logical footprint in MB.
    pub fn with_footprint_mb(mut self, mb: u64) -> Self {
        self.footprint_mb = mb.max(1);
        self
    }

    /// Sets the burst shape.
    pub fn with_bursts(mut self, burst_size: u32, mean_gap_us: f64) -> Self {
        self.burst_size = burst_size.max(1);
        self.mean_burst_gap_us = mean_gap_us.max(1.0);
        self
    }

    /// Generates `count` requests deterministically from `seed`.
    pub fn generate(&self, count: u64, seed: u64) -> Trace {
        let bytes = self.transfer_kb * 1024;
        let footprint = self.footprint_mb * 1024 * 1024;
        let mut rng = DeterministicRng::seeded(seed ^ 0x5357_4545_5000_0000 ^ self.transfer_kb);
        let mut now = SimTime::ZERO;
        let mut records = Vec::with_capacity(count as usize);
        for id in 0..count {
            if id % self.burst_size as u64 == 0 && id != 0 {
                now += Duration::from_micros_f64(rng.exponential(self.mean_burst_gap_us));
            }
            let is_read = rng.bernoulli(self.read_fraction);
            // Align offsets to the transfer size so requests do not straddle more
            // pages than necessary.
            let slots = (footprint / bytes).max(1);
            let offset = rng.uniform_u64(slots) * bytes;
            records.push(TraceRecord {
                id,
                arrival: now,
                op: if is_read {
                    TraceOp::Read
                } else {
                    TraceOp::Write
                },
                offset,
                bytes,
            });
        }
        Trace::new(format!("sweep-{}KB", self.transfer_kb), records)
    }
}

/// The transfer sizes (in KB) swept by Figs 15 and 16: 4 KB to 4 MB.
pub const TRANSFER_SIZES_KB: [u64; 11] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_has_the_requested_size() {
        for kb in [4u64, 64, 1024] {
            let trace = SweepSpec::new(kb).generate(50, 3);
            assert!(trace.iter().all(|r| r.bytes == kb * 1024));
            assert_eq!(trace.len(), 50);
        }
    }

    #[test]
    fn read_fraction_zero_generates_only_writes() {
        let trace = SweepSpec::new(16).with_read_fraction(0.0).generate(100, 1);
        assert!(trace.iter().all(|r| !r.op.is_read()));
    }

    #[test]
    fn offsets_are_aligned_and_bounded() {
        let spec = SweepSpec::new(128).with_footprint_mb(256);
        let trace = spec.generate(200, 5);
        for r in trace.iter() {
            assert_eq!(r.offset % (128 * 1024), 0);
            assert!(r.offset < 256 * 1024 * 1024);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SweepSpec::new(32).generate(100, 9);
        let b = SweepSpec::new(32).generate(100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_sizes_cover_4kb_to_4mb() {
        assert_eq!(TRANSFER_SIZES_KB[0], 4);
        assert_eq!(*TRANSFER_SIZES_KB.last().unwrap(), 4096);
        assert!(TRANSFER_SIZES_KB.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn bursts_advance_time() {
        let trace = SweepSpec::new(8).with_bursts(4, 50.0).generate(16, 2);
        let records = trace.records();
        assert_eq!(records[0].arrival, records[3].arrival);
        assert!(records[4].arrival > records[0].arrival);
    }
}
