//! Fixed-transfer-size microbenchmarks.
//!
//! Figures 1, 15, 16, and 17 sweep the data transfer size from 4 KB to 4 MB while
//! keeping the access pattern simple (random offsets, saturating arrivals).  The
//! [`SweepSpec`] generator produces those workloads.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{DeterministicRng, Duration, SimTime};

use crate::source::TraceSource;
use crate::trace::{Trace, TraceOp, TraceRecord};

/// A fixed-transfer-size microbenchmark.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::SweepSpec;
///
/// let trace = SweepSpec::new(64).with_read_fraction(1.0).generate(100, 1);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.iter().all(|r| r.bytes == 64 * 1024));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Transfer size in KB (every request has exactly this size).
    pub transfer_kb: u64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Logical footprint in MB offsets are drawn from.
    pub footprint_mb: u64,
    /// Requests issued back-to-back per burst.
    pub burst_size: u32,
    /// Mean gap between bursts in microseconds.
    pub mean_burst_gap_us: f64,
}

impl SweepSpec {
    /// Creates a read-heavy sweep point at the given transfer size.
    pub fn new(transfer_kb: u64) -> Self {
        SweepSpec {
            transfer_kb: transfer_kb.max(1),
            read_fraction: 1.0,
            footprint_mb: 4096,
            burst_size: 8,
            mean_burst_gap_us: 100.0,
        }
    }

    /// Sets the read fraction.
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the logical footprint in MB.
    pub fn with_footprint_mb(mut self, mb: u64) -> Self {
        self.footprint_mb = mb.max(1);
        self
    }

    /// Sets the burst shape.
    pub fn with_bursts(mut self, burst_size: u32, mean_gap_us: f64) -> Self {
        self.burst_size = burst_size.max(1);
        self.mean_burst_gap_us = mean_gap_us.max(1.0);
        self
    }

    /// Generates `count` requests deterministically from `seed`, fully
    /// materialized.  Equivalent to draining [`SweepSpec::stream`].
    pub fn generate(&self, count: u64, seed: u64) -> Trace {
        self.stream(count, seed).collect_trace()
    }

    /// A lazy [`TraceSource`] yielding the same records as
    /// [`SweepSpec::generate`], one at a time, in O(1) memory.
    pub fn stream(&self, count: u64, seed: u64) -> SweepStream {
        SweepStream {
            name: format!("sweep-{}KB", self.transfer_kb),
            spec: self.clone(),
            rng: DeterministicRng::seeded(seed ^ 0x5357_4545_5000_0000 ^ self.transfer_kb),
            count,
            next_id: 0,
            now: SimTime::ZERO,
        }
    }
}

/// The lazily evaluating twin of [`SweepSpec::generate`].
#[derive(Debug, Clone)]
pub struct SweepStream {
    name: String,
    spec: SweepSpec,
    rng: DeterministicRng,
    count: u64,
    next_id: u64,
    now: SimTime,
}

impl TraceSource for SweepStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_bytes(&self) -> u64 {
        // A transfer larger than the configured footprint still issues one
        // whole transfer at offset 0, so the bound is the larger of the two.
        (self.spec.footprint_mb * 1024 * 1024).max(self.spec.transfer_kb * 1024)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.count - self.next_id)
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.next_id >= self.count {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let bytes = self.spec.transfer_kb * 1024;
        let footprint = self.spec.footprint_mb * 1024 * 1024;
        if id.is_multiple_of(self.spec.burst_size as u64) && id != 0 {
            self.now +=
                Duration::from_micros_f64(self.rng.exponential(self.spec.mean_burst_gap_us));
        }
        let is_read = self.rng.bernoulli(self.spec.read_fraction);
        // Align offsets to the transfer size so requests do not straddle more
        // pages than necessary; `slots` counts the aligned positions whose
        // whole transfer fits inside the footprint.
        let slots = (footprint / bytes).max(1);
        let offset = self.rng.uniform_u64(slots) * bytes;
        Some(TraceRecord {
            id,
            arrival: self.now,
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            offset,
            bytes,
        })
    }
}

/// The transfer sizes (in KB) swept by Figs 15 and 16: 4 KB to 4 MB.
pub const TRANSFER_SIZES_KB: [u64; 11] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_has_the_requested_size() {
        for kb in [4u64, 64, 1024] {
            let trace = SweepSpec::new(kb).generate(50, 3);
            assert!(trace.iter().all(|r| r.bytes == kb * 1024));
            assert_eq!(trace.len(), 50);
        }
    }

    #[test]
    fn read_fraction_zero_generates_only_writes() {
        let trace = SweepSpec::new(16).with_read_fraction(0.0).generate(100, 1);
        assert!(trace.iter().all(|r| !r.op.is_read()));
    }

    #[test]
    fn offsets_are_aligned_and_bounded() {
        let spec = SweepSpec::new(128).with_footprint_mb(256);
        let trace = spec.generate(200, 5);
        for r in trace.iter() {
            assert_eq!(r.offset % (128 * 1024), 0);
            assert!(r.offset < 256 * 1024 * 1024);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SweepSpec::new(32).generate(100, 9);
        let b = SweepSpec::new(32).generate(100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_sizes_cover_4kb_to_4mb() {
        assert_eq!(TRANSFER_SIZES_KB[0], 4);
        assert_eq!(*TRANSFER_SIZES_KB.last().unwrap(), 4096);
        assert!(TRANSFER_SIZES_KB.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn bursts_advance_time() {
        let trace = SweepSpec::new(8).with_bursts(4, 50.0).generate(16, 2);
        let records = trace.records();
        assert_eq!(records[0].arrival, records[3].arrival);
        assert!(records[4].arrival > records[0].arrival);
    }

    #[test]
    fn stream_and_generate_agree_record_for_record() {
        let spec = SweepSpec::new(64).with_read_fraction(0.5);
        let trace = spec.generate(120, 9);
        let mut stream = spec.stream(120, 9);
        assert_eq!(stream.name(), "sweep-64KB");
        assert_eq!(stream.remaining_hint(), Some(120));
        for expected in trace.iter() {
            assert_eq!(stream.next_record().as_ref(), Some(expected));
        }
        assert!(stream.next_record().is_none());
    }

    #[test]
    fn footprint_bound_covers_oversized_transfers() {
        let stream = SweepSpec::new(4096).with_footprint_mb(1).stream(10, 1);
        assert_eq!(stream.footprint_bytes(), 4096 * 1024);
        let mut stream = stream;
        while let Some(r) = stream.next_record() {
            assert!(r.offset + r.bytes <= 4096 * 1024);
        }
    }
}
