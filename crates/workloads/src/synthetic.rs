//! Synthetic trace generation parameterized by the statistics of Table 1.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{DeterministicRng, Duration, SimTime};

use crate::trace::{Trace, TraceOp, TraceRecord};

/// Transactional-locality class of a workload (last column of Table 1): how likely
/// the requests outstanding at any instant are to form high-FLP flash transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Requests are scattered; little opportunity to coalesce.
    Low,
    /// Some clustering of offsets within bursts.
    Medium,
    /// Bursts concentrate on neighbouring offsets, exposing many same-chip,
    /// different-die/plane pairs.
    High,
}

impl Locality {
    /// Probability that the next request in a burst continues the current cluster.
    fn cluster_probability(self) -> f64 {
        match self {
            Locality::Low => 0.10,
            Locality::Medium => 0.45,
            Locality::High => 0.80,
        }
    }

    /// Short label used by Table 1 reports.
    pub fn label(self) -> &'static str {
        match self {
            Locality::Low => "Low",
            Locality::Medium => "Medium",
            Locality::High => "High",
        }
    }
}

/// Parameters of a synthetic workload.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::{SyntheticSpec, Locality};
///
/// let spec = SyntheticSpec::new("demo")
///     .with_read_fraction(0.8)
///     .with_mean_sizes_kb(16.0, 8.0)
///     .with_randomness(0.9, 0.8)
///     .with_locality(Locality::High);
/// let trace = spec.generate(200, 42);
/// assert_eq!(trace.len(), 200);
/// assert_eq!(trace.name(), "demo");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Workload name.
    pub name: String,
    /// Fraction of requests that are reads (by count).
    pub read_fraction: f64,
    /// Mean read request size in KB.
    pub read_mean_kb: f64,
    /// Mean write request size in KB.
    pub write_mean_kb: f64,
    /// Fraction of reads whose offset is random (vs. sequential to the previous
    /// read).
    pub read_randomness: f64,
    /// Fraction of writes whose offset is random.
    pub write_randomness: f64,
    /// Transactional-locality class.
    pub locality: Locality,
    /// Logical footprint in MB that offsets are drawn from.
    pub footprint_mb: u64,
    /// Number of requests issued back-to-back in one burst.
    pub burst_size: u32,
    /// Mean gap between bursts in microseconds.
    pub mean_burst_gap_us: f64,
}

impl SyntheticSpec {
    /// Creates a specification with neutral defaults.
    pub fn new(name: impl Into<String>) -> Self {
        SyntheticSpec {
            name: name.into(),
            read_fraction: 0.7,
            read_mean_kb: 16.0,
            write_mean_kb: 16.0,
            read_randomness: 0.9,
            write_randomness: 0.9,
            locality: Locality::Medium,
            footprint_mb: 1024,
            burst_size: 8,
            mean_burst_gap_us: 200.0,
        }
    }

    /// Sets the read fraction (by request count).
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets mean read and write request sizes in KB.
    pub fn with_mean_sizes_kb(mut self, read_kb: f64, write_kb: f64) -> Self {
        self.read_mean_kb = read_kb.max(0.5);
        self.write_mean_kb = write_kb.max(0.5);
        self
    }

    /// Sets read and write randomness (fraction of non-sequential offsets).
    pub fn with_randomness(mut self, read: f64, write: f64) -> Self {
        self.read_randomness = read.clamp(0.0, 1.0);
        self.write_randomness = write.clamp(0.0, 1.0);
        self
    }

    /// Sets the transactional-locality class.
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// Sets the logical footprint in MB.
    pub fn with_footprint_mb(mut self, mb: u64) -> Self {
        self.footprint_mb = mb.max(1);
        self
    }

    /// Sets the burst shape: requests per burst and mean gap between bursts.
    pub fn with_bursts(mut self, burst_size: u32, mean_gap_us: f64) -> Self {
        self.burst_size = burst_size.max(1);
        self.mean_burst_gap_us = mean_gap_us.max(1.0);
        self
    }

    /// Generates `count` requests deterministically from `seed`.
    pub fn generate(&self, count: u64, seed: u64) -> Trace {
        let mut rng = DeterministicRng::seeded(seed ^ 0x5052_494E_4B4C_4552);
        let footprint = self.footprint_mb * 1024 * 1024;
        let mut records = Vec::with_capacity(count as usize);
        let mut now = SimTime::ZERO;
        let mut seq_read = rng.uniform_u64(footprint);
        let mut seq_write = rng.uniform_u64(footprint);
        let mut cluster_base = rng.uniform_u64(footprint);
        let cluster_span: u64 = 2 * 1024 * 1024; // 2 MB neighbourhood

        for id in 0..count {
            if id % self.burst_size as u64 == 0 && id != 0 {
                let gap = rng.exponential(self.mean_burst_gap_us);
                now += Duration::from_micros_f64(gap);
                if rng.bernoulli(0.5) {
                    cluster_base = rng.uniform_u64(footprint);
                }
            }
            let is_read = rng.bernoulli(self.read_fraction);
            let (mean_kb, randomness, seq_ptr) = if is_read {
                (self.read_mean_kb, self.read_randomness, &mut seq_read)
            } else {
                (self.write_mean_kb, self.write_randomness, &mut seq_write)
            };
            let size_kb = rng.bounded_pareto(mean_kb * 0.25, mean_kb * 6.0, 1.4);
            let bytes = ((size_kb * 1024.0) as u64).clamp(512, 4 * 1024 * 1024);

            let offset = if rng.bernoulli(self.locality.cluster_probability()) {
                // Stay within the current cluster neighbourhood.
                cluster_base.saturating_add(rng.uniform_u64(cluster_span)) % footprint
            } else if rng.bernoulli(randomness) {
                rng.uniform_u64(footprint)
            } else {
                let o = *seq_ptr;
                *seq_ptr = (*seq_ptr + bytes) % footprint;
                o
            };

            records.push(TraceRecord {
                id,
                arrival: now,
                op: if is_read {
                    TraceOp::Read
                } else {
                    TraceOp::Write
                },
                offset,
                bytes,
            });
        }
        Trace::new(self.name.clone(), records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::new("det");
        let a = spec.generate(100, 9);
        let b = spec.generate(100, 9);
        assert_eq!(a, b);
        let c = spec.generate(100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = SyntheticSpec::new("reads").with_read_fraction(0.8);
        let trace = spec.generate(2000, 3);
        let reads = trace.iter().filter(|r| r.op.is_read()).count();
        let fraction = reads as f64 / trace.len() as f64;
        assert!((fraction - 0.8).abs() < 0.05, "fraction={fraction}");
        let all_writes = SyntheticSpec::new("w")
            .with_read_fraction(0.0)
            .generate(100, 1);
        assert!(all_writes.iter().all(|r| !r.op.is_read()));
    }

    #[test]
    fn sizes_scale_with_the_mean() {
        let small = SyntheticSpec::new("s")
            .with_mean_sizes_kb(4.0, 4.0)
            .generate(1000, 5);
        let large = SyntheticSpec::new("l")
            .with_mean_sizes_kb(256.0, 256.0)
            .generate(1000, 5);
        let mean = |t: &Trace| t.iter().map(|r| r.bytes as f64).sum::<f64>() / t.len() as f64;
        assert!(mean(&large) > mean(&small) * 8.0);
    }

    #[test]
    fn offsets_stay_within_the_footprint() {
        let spec = SyntheticSpec::new("fp").with_footprint_mb(64);
        let trace = spec.generate(1000, 11);
        let bound = 64 * 1024 * 1024;
        assert!(trace.iter().all(|r| r.offset < bound));
    }

    #[test]
    fn lower_randomness_means_more_sequential_offsets() {
        let spec_seq = SyntheticSpec::new("seq")
            .with_randomness(0.05, 0.05)
            .with_locality(Locality::Low);
        let spec_rand = SyntheticSpec::new("rand")
            .with_randomness(0.95, 0.95)
            .with_locality(Locality::Low);
        let seq_trace = spec_seq.generate(1000, 21);
        let rand_trace = spec_rand.generate(1000, 21);
        let sequential_pairs = |t: &Trace| {
            let mut count = 0;
            let recs = t.records();
            for w in recs.windows(2) {
                if w[1].offset == (w[0].offset + w[0].bytes) % (1024 * 1024 * 1024) {
                    count += 1;
                }
            }
            count
        };
        assert!(sequential_pairs(&seq_trace) > sequential_pairs(&rand_trace));
    }

    #[test]
    fn bursts_share_arrival_times() {
        let spec = SyntheticSpec::new("burst").with_bursts(4, 500.0);
        let trace = spec.generate(64, 2);
        let records = trace.records();
        // Within a burst of 4, arrival times are identical.
        assert_eq!(records[0].arrival, records[3].arrival);
        // Across bursts, time advances.
        assert!(records[4].arrival > records[3].arrival);
    }

    #[test]
    fn locality_labels() {
        assert_eq!(Locality::Low.label(), "Low");
        assert_eq!(Locality::Medium.label(), "Medium");
        assert_eq!(Locality::High.label(), "High");
    }
}
