//! Synthetic trace generation parameterized by the statistics of Table 1.

use serde::{Deserialize, Serialize};
use sprinkler_sim::{DeterministicRng, Duration, SimTime};

use crate::source::TraceSource;
use crate::trace::{Trace, TraceOp, TraceRecord};

/// Transactional-locality class of a workload (last column of Table 1): how likely
/// the requests outstanding at any instant are to form high-FLP flash transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Requests are scattered; little opportunity to coalesce.
    Low,
    /// Some clustering of offsets within bursts.
    Medium,
    /// Bursts concentrate on neighbouring offsets, exposing many same-chip,
    /// different-die/plane pairs.
    High,
}

impl Locality {
    /// Probability that the next request in a burst continues the current cluster.
    fn cluster_probability(self) -> f64 {
        match self {
            Locality::Low => 0.10,
            Locality::Medium => 0.45,
            Locality::High => 0.80,
        }
    }

    /// Short label used by Table 1 reports.
    pub fn label(self) -> &'static str {
        match self {
            Locality::Low => "Low",
            Locality::Medium => "Medium",
            Locality::High => "High",
        }
    }
}

/// Parameters of a synthetic workload.
///
/// # Example
///
/// ```
/// use sprinkler_workloads::{SyntheticSpec, Locality};
///
/// let spec = SyntheticSpec::new("demo")
///     .with_read_fraction(0.8)
///     .with_mean_sizes_kb(16.0, 8.0)
///     .with_randomness(0.9, 0.8)
///     .with_locality(Locality::High);
/// let trace = spec.generate(200, 42);
/// assert_eq!(trace.len(), 200);
/// assert_eq!(trace.name(), "demo");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Workload name.
    pub name: String,
    /// Fraction of requests that are reads (by count).
    pub read_fraction: f64,
    /// Mean read request size in KB.
    pub read_mean_kb: f64,
    /// Mean write request size in KB.
    pub write_mean_kb: f64,
    /// Fraction of reads whose offset is random (vs. sequential to the previous
    /// read).
    pub read_randomness: f64,
    /// Fraction of writes whose offset is random.
    pub write_randomness: f64,
    /// Transactional-locality class.
    pub locality: Locality,
    /// Logical footprint in MB that offsets are drawn from.
    pub footprint_mb: u64,
    /// Number of requests issued back-to-back in one burst.
    pub burst_size: u32,
    /// Mean gap between bursts in microseconds.
    pub mean_burst_gap_us: f64,
}

impl SyntheticSpec {
    /// Creates a specification with neutral defaults.
    pub fn new(name: impl Into<String>) -> Self {
        SyntheticSpec {
            name: name.into(),
            read_fraction: 0.7,
            read_mean_kb: 16.0,
            write_mean_kb: 16.0,
            read_randomness: 0.9,
            write_randomness: 0.9,
            locality: Locality::Medium,
            footprint_mb: 1024,
            burst_size: 8,
            mean_burst_gap_us: 200.0,
        }
    }

    /// Sets the read fraction (by request count).
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets mean read and write request sizes in KB.
    pub fn with_mean_sizes_kb(mut self, read_kb: f64, write_kb: f64) -> Self {
        self.read_mean_kb = read_kb.max(0.5);
        self.write_mean_kb = write_kb.max(0.5);
        self
    }

    /// Sets read and write randomness (fraction of non-sequential offsets).
    pub fn with_randomness(mut self, read: f64, write: f64) -> Self {
        self.read_randomness = read.clamp(0.0, 1.0);
        self.write_randomness = write.clamp(0.0, 1.0);
        self
    }

    /// Sets the transactional-locality class.
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// Sets the logical footprint in MB.
    pub fn with_footprint_mb(mut self, mb: u64) -> Self {
        self.footprint_mb = mb.max(1);
        self
    }

    /// Sets the burst shape: requests per burst and mean gap between bursts.
    pub fn with_bursts(mut self, burst_size: u32, mean_gap_us: f64) -> Self {
        self.burst_size = burst_size.max(1);
        self.mean_burst_gap_us = mean_gap_us.max(1.0);
        self
    }

    /// Generates `count` requests deterministically from `seed`, fully
    /// materialized.  Equivalent to draining [`SyntheticSpec::stream`].
    pub fn generate(&self, count: u64, seed: u64) -> Trace {
        self.stream(count, seed).collect_trace()
    }

    /// A lazy [`TraceSource`] that yields the same `count` records
    /// [`SyntheticSpec::generate`] would materialize, one at a time, in O(1)
    /// memory — the representation multi-million-I/O replays stream from.
    pub fn stream(&self, count: u64, seed: u64) -> SyntheticStream {
        let mut rng = DeterministicRng::seeded(seed ^ 0x5052_494E_4B4C_4552);
        let footprint = self.footprint_mb * 1024 * 1024;
        let seq_read = rng.uniform_u64(footprint);
        let seq_write = rng.uniform_u64(footprint);
        let cluster_base = rng.uniform_u64(footprint);
        SyntheticStream {
            spec: self.clone(),
            rng,
            footprint,
            count,
            next_id: 0,
            now: SimTime::ZERO,
            seq_read,
            seq_write,
            cluster_base,
        }
    }
}

/// The lazily evaluating twin of [`SyntheticSpec::generate`]: holds only the
/// generator state (RNG, sequential pointers, cluster base), never the records.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    spec: SyntheticSpec,
    rng: DeterministicRng,
    footprint: u64,
    count: u64,
    next_id: u64,
    now: SimTime,
    seq_read: u64,
    seq_write: u64,
    cluster_base: u64,
}

impl SyntheticStream {
    /// 2 MB cluster neighbourhood for transactional locality.
    const CLUSTER_SPAN: u64 = 2 * 1024 * 1024;
}

impl TraceSource for SyntheticStream {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.count - self.next_id)
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.next_id >= self.count {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let spec = &self.spec;
        let rng = &mut self.rng;
        let footprint = self.footprint;
        if id.is_multiple_of(spec.burst_size as u64) && id != 0 {
            let gap = rng.exponential(spec.mean_burst_gap_us);
            self.now += Duration::from_micros_f64(gap);
            if rng.bernoulli(0.5) {
                self.cluster_base = rng.uniform_u64(footprint);
            }
        }
        let is_read = rng.bernoulli(spec.read_fraction);
        let (mean_kb, randomness, seq_ptr) = if is_read {
            (spec.read_mean_kb, spec.read_randomness, &mut self.seq_read)
        } else {
            (
                spec.write_mean_kb,
                spec.write_randomness,
                &mut self.seq_write,
            )
        };
        let size_kb = rng.bounded_pareto(mean_kb * 0.25, mean_kb * 6.0, 1.4);
        let bytes = ((size_kb * 1024.0) as u64)
            .clamp(512, 4 * 1024 * 1024)
            .min(footprint);
        // The whole access must fit inside the footprint: `limit` is the
        // largest admissible offset for this record's size.  The seed bounded
        // only the offset, letting up-to-4 MB requests spill logical pages
        // past the declared footprint.
        let limit = footprint - bytes;

        let offset = if rng.bernoulli(spec.locality.cluster_probability()) {
            // Stay within the current cluster neighbourhood.
            (self
                .cluster_base
                .saturating_add(rng.uniform_u64(Self::CLUSTER_SPAN))
                % footprint)
                .min(limit)
        } else if rng.bernoulli(randomness) {
            rng.uniform_u64(limit + 1)
        } else {
            let mut o = *seq_ptr;
            if o > limit {
                // A sequential run that would cross the footprint edge
                // restarts at the beginning, like a wrapped circular scan.
                o = 0;
            }
            *seq_ptr = (o + bytes) % footprint;
            o
        };

        Some(TraceRecord {
            id,
            arrival: self.now,
            op: if is_read {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            offset,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::new("det");
        let a = spec.generate(100, 9);
        let b = spec.generate(100, 9);
        assert_eq!(a, b);
        let c = spec.generate(100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = SyntheticSpec::new("reads").with_read_fraction(0.8);
        let trace = spec.generate(2000, 3);
        let reads = trace.iter().filter(|r| r.op.is_read()).count();
        let fraction = reads as f64 / trace.len() as f64;
        assert!((fraction - 0.8).abs() < 0.05, "fraction={fraction}");
        let all_writes = SyntheticSpec::new("w")
            .with_read_fraction(0.0)
            .generate(100, 1);
        assert!(all_writes.iter().all(|r| !r.op.is_read()));
    }

    #[test]
    fn sizes_scale_with_the_mean() {
        let small = SyntheticSpec::new("s")
            .with_mean_sizes_kb(4.0, 4.0)
            .generate(1000, 5);
        let large = SyntheticSpec::new("l")
            .with_mean_sizes_kb(256.0, 256.0)
            .generate(1000, 5);
        let mean = |t: &Trace| t.iter().map(|r| r.bytes as f64).sum::<f64>() / t.len() as f64;
        assert!(mean(&large) > mean(&small) * 8.0);
    }

    #[test]
    fn offsets_stay_within_the_footprint() {
        // Regression for the footprint-spill bug: the seed bounded only the
        // offset, so `offset + bytes` leaked past the footprint on all three
        // offset paths (cluster, random, sequential).  The whole access must
        // fit.
        let bound = 64 * 1024 * 1024;
        for seed in [11, 12, 13] {
            let spec = SyntheticSpec::new("fp").with_footprint_mb(64);
            let trace = spec.generate(1000, seed);
            for r in trace.iter() {
                assert!(
                    r.offset + r.bytes <= bound,
                    "record {} spills past the footprint: offset={} bytes={}",
                    r.id,
                    r.offset,
                    r.bytes
                );
            }
        }
        // Locality extremes force each offset path to dominate.
        for locality in [Locality::Low, Locality::High] {
            for randomness in [0.0, 1.0] {
                let trace = SyntheticSpec::new("fp")
                    .with_footprint_mb(16)
                    .with_locality(locality)
                    .with_randomness(randomness, randomness)
                    .generate(500, 29);
                assert!(trace.iter().all(|r| r.offset + r.bytes <= 16 * 1024 * 1024));
            }
        }
    }

    #[test]
    fn stream_and_generate_agree_record_for_record() {
        let spec = SyntheticSpec::new("twin").with_footprint_mb(32);
        let trace = spec.generate(300, 17);
        let mut stream = spec.stream(300, 17);
        assert_eq!(stream.name(), "twin");
        assert_eq!(stream.footprint_bytes(), 32 * 1024 * 1024);
        assert_eq!(stream.remaining_hint(), Some(300));
        for expected in trace.iter() {
            assert_eq!(stream.next_record().as_ref(), Some(expected));
        }
        assert!(stream.next_record().is_none());
        assert_eq!(stream.remaining_hint(), Some(0));
    }

    #[test]
    fn lower_randomness_means_more_sequential_offsets() {
        let spec_seq = SyntheticSpec::new("seq")
            .with_randomness(0.05, 0.05)
            .with_locality(Locality::Low);
        let spec_rand = SyntheticSpec::new("rand")
            .with_randomness(0.95, 0.95)
            .with_locality(Locality::Low);
        let seq_trace = spec_seq.generate(1000, 21);
        let rand_trace = spec_rand.generate(1000, 21);
        // Use the specs' actual footprint for the wrap-around comparison (the
        // seed hardcoded a 1 GiB modulus that only matched the default spec).
        assert_eq!(spec_seq.footprint_mb, spec_rand.footprint_mb);
        let footprint = spec_seq.footprint_mb * 1024 * 1024;
        let sequential_pairs = |t: &Trace| {
            let mut count = 0;
            let recs = t.records();
            for w in recs.windows(2) {
                if w[1].offset == (w[0].offset + w[0].bytes) % footprint {
                    count += 1;
                }
            }
            count
        };
        assert!(sequential_pairs(&seq_trace) > sequential_pairs(&rand_trace));
    }

    #[test]
    fn bursts_share_arrival_times() {
        let spec = SyntheticSpec::new("burst").with_bursts(4, 500.0);
        let trace = spec.generate(64, 2);
        let records = trace.records();
        // Within a burst of 4, arrival times are identical.
        assert_eq!(records[0].arrival, records[3].arrival);
        // Across bursts, time advances.
        assert!(records[4].arrival > records[3].arrival);
    }

    #[test]
    fn locality_labels() {
        assert_eq!(Locality::Low.label(), "Low");
        assert_eq!(Locality::Medium.label(), "Medium");
        assert_eq!(Locality::High.label(), "High");
    }
}
