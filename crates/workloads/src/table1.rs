//! The sixteen data-center workloads of Table 1, expressed as synthetic
//! specifications.
//!
//! Each entry reproduces the published per-trace statistics: total transfer volume
//! and request count per direction (from which the mean request sizes and the
//! read/write mix follow), the randomness of the issued reads and writes, and the
//! transactional-locality class.  Absolute trace lengths are scaled down so every
//! experiment completes in seconds; the *relative* characteristics are preserved.

use crate::synthetic::{Locality, SyntheticSpec};

/// One row of Table 1 as published.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Workload name.
    pub name: &'static str,
    /// Total read volume in MB.
    pub read_mb: f64,
    /// Total write volume in MB.
    pub write_mb: f64,
    /// Read instruction count (thousands).
    pub read_kops: f64,
    /// Write instruction count (thousands).
    pub write_kops: f64,
    /// Randomness of reads (%).
    pub read_randomness: f64,
    /// Randomness of writes (%).
    pub write_randomness: f64,
    /// Transactional-locality class.
    pub locality: Locality,
}

/// The published Table 1 statistics.
pub const TABLE1: [Table1Row; 16] = [
    Table1Row {
        name: "cfs0",
        read_mb: 3607.0,
        write_mb: 1692.0,
        read_kops: 406.0,
        write_kops: 135.0,
        read_randomness: 92.79,
        write_randomness: 86.59,
        locality: Locality::Low,
    },
    Table1Row {
        name: "cfs1",
        read_mb: 2955.0,
        write_mb: 1773.0,
        read_kops: 385.0,
        write_kops: 130.0,
        read_randomness: 94.01,
        write_randomness: 86.12,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "cfs2",
        read_mb: 2904.0,
        write_mb: 1845.0,
        read_kops: 384.0,
        write_kops: 135.0,
        read_randomness: 94.28,
        write_randomness: 85.95,
        locality: Locality::Low,
    },
    Table1Row {
        name: "cfs3",
        read_mb: 3143.0,
        write_mb: 1649.0,
        read_kops: 387.0,
        write_kops: 132.0,
        read_randomness: 93.97,
        write_randomness: 86.70,
        locality: Locality::High,
    },
    Table1Row {
        name: "cfs4",
        read_mb: 3600.0,
        write_mb: 1660.0,
        read_kops: 401.0,
        write_kops: 132.0,
        read_randomness: 92.60,
        write_randomness: 86.59,
        locality: Locality::High,
    },
    Table1Row {
        name: "hm0",
        read_mb: 10445.0,
        write_mb: 21471.0,
        read_kops: 1417.0,
        write_kops: 2575.0,
        read_randomness: 94.20,
        write_randomness: 92.84,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "hm1",
        read_mb: 8670.0,
        write_mb: 567.0,
        read_kops: 580.0,
        write_kops: 28.0,
        read_randomness: 98.29,
        write_randomness: 98.59,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "msnfs0",
        read_mb: 1971.0,
        write_mb: 30519.0,
        read_kops: 41.0,
        write_kops: 1467.0,
        read_randomness: 99.79,
        write_randomness: 87.23,
        locality: Locality::Low,
    },
    Table1Row {
        name: "msnfs1",
        read_mb: 17661.0,
        write_mb: 17722.0,
        read_kops: 121.0,
        write_kops: 2100.0,
        read_randomness: 88.80,
        write_randomness: 66.71,
        locality: Locality::Low,
    },
    Table1Row {
        name: "msnfs2",
        read_mb: 92772.0,
        write_mb: 24835.0,
        read_kops: 9624.0,
        write_kops: 3003.0,
        read_randomness: 98.13,
        write_randomness: 99.97,
        locality: Locality::High,
    },
    Table1Row {
        name: "msnfs3",
        read_mb: 5.0,
        write_mb: 2387.0,
        read_kops: 1.0,
        write_kops: 5.0,
        read_randomness: 22.52,
        write_randomness: 64.79,
        locality: Locality::High,
    },
    Table1Row {
        name: "proj0",
        read_mb: 9407.0,
        write_mb: 151274.0,
        read_kops: 527.0,
        write_kops: 3697.0,
        read_randomness: 92.05,
        write_randomness: 79.31,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "proj1",
        read_mb: 786810.0,
        write_mb: 2496.0,
        read_kops: 21142.0,
        write_kops: 2496.0,
        read_randomness: 82.34,
        write_randomness: 96.88,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "proj2",
        read_mb: 1065308.0,
        write_mb: 176879.0,
        read_kops: 25641.0,
        write_kops: 3624.0,
        read_randomness: 78.74,
        write_randomness: 93.93,
        locality: Locality::Low,
    },
    Table1Row {
        name: "proj3",
        read_mb: 19123.0,
        write_mb: 2754.0,
        read_kops: 2128.0,
        write_kops: 116.0,
        read_randomness: 75.01,
        write_randomness: 88.37,
        locality: Locality::Medium,
    },
    Table1Row {
        name: "proj4",
        read_mb: 150604.0,
        write_mb: 1058.0,
        read_kops: 6369.0,
        write_kops: 95.0,
        read_randomness: 84.39,
        write_randomness: 95.52,
        locality: Locality::Medium,
    },
];

impl Table1Row {
    /// Mean read request size in KB implied by the published volume and count.
    pub fn read_mean_kb(&self) -> f64 {
        if self.read_kops <= 0.0 {
            4.0
        } else {
            (self.read_mb * 1024.0) / (self.read_kops * 1000.0)
        }
    }

    /// Mean write request size in KB implied by the published volume and count.
    pub fn write_mean_kb(&self) -> f64 {
        if self.write_kops <= 0.0 {
            4.0
        } else {
            (self.write_mb * 1024.0) / (self.write_kops * 1000.0)
        }
    }

    /// Fraction of requests that are reads, by count.
    pub fn read_fraction(&self) -> f64 {
        let total = self.read_kops + self.write_kops;
        if total <= 0.0 {
            0.5
        } else {
            self.read_kops / total
        }
    }

    /// The synthetic specification that reproduces this row's characteristics.
    pub fn spec(&self) -> SyntheticSpec {
        SyntheticSpec::new(self.name)
            .with_read_fraction(self.read_fraction())
            .with_mean_sizes_kb(self.read_mean_kb().max(2.0), self.write_mean_kb().max(2.0))
            .with_randomness(self.read_randomness / 100.0, self.write_randomness / 100.0)
            .with_locality(self.locality)
            .with_footprint_mb(2048)
            .with_bursts(8, 150.0)
    }
}

/// All sixteen paper workloads as synthetic specifications, in Table 1 order.
pub fn paper_workloads() -> Vec<SyntheticSpec> {
    TABLE1.iter().map(Table1Row::spec).collect()
}

/// Looks up a single paper workload by name (e.g. `"msnfs1"`).
pub fn workload(name: &str) -> Option<SyntheticSpec> {
    TABLE1
        .iter()
        .find(|row| row.name == name)
        .map(Table1Row::spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixteen_workloads() {
        assert_eq!(TABLE1.len(), 16);
        assert_eq!(paper_workloads().len(), 16);
        let names: Vec<&str> = TABLE1.iter().map(|r| r.name).collect();
        assert!(names.contains(&"cfs0"));
        assert!(names.contains(&"msnfs3"));
        assert!(names.contains(&"proj4"));
        assert!(names.contains(&"hm1"));
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(workload("msnfs1").is_some());
        assert!(workload("cfs3").is_some());
        assert!(workload("nonexistent").is_none());
    }

    #[test]
    fn derived_statistics_are_sane() {
        for row in &TABLE1 {
            assert!(row.read_mean_kb() > 0.0, "{}", row.name);
            assert!(row.write_mean_kb() > 0.0, "{}", row.name);
            let f = row.read_fraction();
            assert!((0.0..=1.0).contains(&f), "{}", row.name);
        }
        // hm1 is read-dominated, msnfs0 is write-dominated.
        assert!(
            TABLE1
                .iter()
                .find(|r| r.name == "hm1")
                .unwrap()
                .read_fraction()
                > 0.9
        );
        assert!(
            TABLE1
                .iter()
                .find(|r| r.name == "msnfs0")
                .unwrap()
                .read_fraction()
                < 0.1
        );
        // proj2 carries very large reads (low transactional locality, Fig 10b).
        assert!(
            TABLE1
                .iter()
                .find(|r| r.name == "proj2")
                .unwrap()
                .read_mean_kb()
                > 30.0
        );
    }

    #[test]
    fn specs_generate_traces_with_matching_mix() {
        let spec = workload("hm1").unwrap();
        let trace = spec.generate(1000, 17);
        let reads = trace.iter().filter(|r| r.op.is_read()).count() as f64;
        assert!(reads / 1000.0 > 0.85);

        let spec = workload("msnfs0").unwrap();
        let trace = spec.generate(1000, 17);
        let reads = trace.iter().filter(|r| r.op.is_read()).count() as f64;
        assert!(reads / 1000.0 < 0.15);
    }
}
