//! The block-level trace model.

use serde::{Deserialize, Serialize};
use sprinkler_sim::SimTime;

/// Whether a trace record reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceOp {
    /// Read request.
    Read,
    /// Write request.
    Write,
}

impl TraceOp {
    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, TraceOp::Read)
    }
}

/// One block-level I/O request of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic record identifier.
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Operation.
    pub op: TraceOp,
    /// Byte offset of the access.
    pub offset: u64,
    /// Length in bytes (always ≥ 1).
    pub bytes: u64,
}

impl TraceRecord {
    /// The record expressed in flash pages: `(first logical page, page count)`.
    pub fn pages(&self, page_size: usize) -> (u64, u32) {
        let page_size = page_size as u64;
        let first = self.offset / page_size;
        let last = (self.offset + self.bytes.max(1) - 1) / page_size;
        (first, (last - first + 1) as u32)
    }
}

/// A complete trace: a named, time-ordered sequence of records.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from records, sorting them by arrival time.
    pub fn new(name: impl Into<String>, mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| (r.arrival, r.id));
        Trace {
            name: name.into(),
            records,
        }
    }

    /// The trace's name (e.g. `"cfs0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in arrival order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Returns a copy truncated to the first `n` records (used for time-series and
    /// quick runs).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            records: self.records.iter().take(n).copied().collect(),
        }
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.op.is_read())
            .map(|r| r.bytes)
            .sum()
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !r.op.is_read())
            .map(|r| r.bytes)
            .sum()
    }

    /// The trace's byte footprint: the maximum `offset + bytes` over all
    /// records (0 for an empty trace).  Every record stays strictly within the
    /// half-open range `[0, footprint_bytes())`.
    pub fn footprint_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.offset + r.bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, at_us: u64, op: TraceOp, offset: u64, bytes: u64) -> TraceRecord {
        TraceRecord {
            id,
            arrival: SimTime::from_micros(at_us),
            op,
            offset,
            bytes,
        }
    }

    #[test]
    fn records_are_sorted_by_arrival() {
        let trace = Trace::new(
            "t",
            vec![
                rec(1, 50, TraceOp::Read, 0, 4096),
                rec(0, 10, TraceOp::Write, 8192, 2048),
            ],
        );
        assert_eq!(trace.name(), "t");
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.records()[0].id, 0);
        assert_eq!(trace.records()[1].id, 1);
    }

    #[test]
    fn page_conversion_rounds_to_page_boundaries() {
        let r = rec(0, 0, TraceOp::Read, 1024, 2048);
        // Bytes 1024..3072 touch pages 0 and 1 (2 KB pages).
        assert_eq!(r.pages(2048), (0, 2));
        let r = rec(0, 0, TraceOp::Read, 2048, 2048);
        assert_eq!(r.pages(2048), (1, 1));
        let r = rec(0, 0, TraceOp::Read, 0, 1);
        assert_eq!(r.pages(2048), (0, 1));
        let r = rec(0, 0, TraceOp::Read, 0, 4096 * 4);
        assert_eq!(r.pages(2048), (0, 8));
    }

    #[test]
    fn byte_totals_split_by_direction() {
        let trace = Trace::new(
            "t",
            vec![
                rec(0, 0, TraceOp::Read, 0, 4096),
                rec(1, 1, TraceOp::Write, 0, 1024),
                rec(2, 2, TraceOp::Read, 0, 1000),
            ],
        );
        assert_eq!(trace.read_bytes(), 5096);
        assert_eq!(trace.write_bytes(), 1024);
    }

    #[test]
    fn footprint_is_the_max_extent() {
        assert_eq!(Trace::new("e", vec![]).footprint_bytes(), 0);
        let trace = Trace::new(
            "t",
            vec![
                rec(0, 0, TraceOp::Read, 4096, 1024),
                rec(1, 1, TraceOp::Write, 0, 2048),
            ],
        );
        assert_eq!(trace.footprint_bytes(), 5120);
    }

    #[test]
    fn truncated_keeps_the_prefix() {
        let trace = Trace::new(
            "t",
            (0..10)
                .map(|i| rec(i, i * 10, TraceOp::Read, i * 4096, 4096))
                .collect(),
        );
        let head = trace.truncated(3);
        assert_eq!(head.len(), 3);
        assert_eq!(head.records()[2].id, 2);
        assert_eq!(head.name(), "t");
        assert_eq!(trace.truncated(100).len(), 10);
    }
}
