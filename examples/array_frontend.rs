//! Multi-SSD array frontend: stripes one workload across an array of
//! independent Sprinkler devices and compares how scheduler choice composes
//! with host-level sharding.
//!
//! Drives `sprinkler::array` directly: a fixed 64-chip budget is partitioned
//! into 1, 4, or 16 devices, the same 256 KB-transfer workload is striped over
//! each array shape, and the merged metrics show whether the frontend converts
//! added devices into aggregate bandwidth.  A second panel shows hot-shard
//! imbalance: clustered offsets against coarse stripes pin bursts to one
//! device at a time.  A third panel turns the adaptive rebalancer on against
//! the scenario registry's standing hot shard and shows the placement layer
//! clawing the lost bandwidth back.
//!
//! Run with `cargo run --example array_frontend --release`.

use sprinkler::array::{run_array, ArrayConfig};
use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::ExperimentScale;
use sprinkler::experiments::scenario;
use sprinkler::ssd::SsdConfig;
use sprinkler::workloads::{Locality, SweepSpec, SyntheticSpec};

fn main() {
    println!("Array scale-out: 64 chips, repartitioned into n devices, one striped workload\n");
    println!(
        "{:<6} {:>6} {:>14} {:>14} {:>12} {:>10}",
        "width", "chips", "VAS KB/s", "SPK3 KB/s", "SPK3/VAS", "io skew"
    );
    for devices in [1usize, 4, 16] {
        let config = ArrayConfig::new(
            SsdConfig::paper_default()
                .with_blocks_per_plane(32)
                .with_chip_count(64 / devices),
        )
        .with_devices(devices)
        .with_stripe_kb(32);
        let spec = SweepSpec::new(256)
            .with_read_fraction(0.8)
            .with_footprint_mb(512)
            .with_bursts(16, 50.0);
        let run = |kind| {
            run_array(&config, kind, &mut spec.stream(300, 0xA44A))
                .expect("the workload fits the array")
        };
        let vas = run(SchedulerKind::Vas);
        let spk3 = run(SchedulerKind::Spk3);
        println!(
            "n={:<4} {:>6} {:>14.0} {:>14.0} {:>11.2}x {:>10.2}",
            devices,
            64 / devices,
            vas.bandwidth_kb_per_sec,
            spk3.bandwidth_kb_per_sec,
            spk3.bandwidth_kb_per_sec / vas.bandwidth_kb_per_sec,
            spk3.skew.io_imbalance,
        );
    }

    println!("\nHot-shard imbalance: 4 devices, 4 MB stripes, clustered vs uniform offsets\n");
    for (label, locality, randomness, footprint_mb) in [
        ("uniform", Locality::Low, 1.0, 256),
        ("hot-shard", Locality::High, 0.2, 24),
    ] {
        let config = ArrayConfig::new(
            SsdConfig::paper_default()
                .with_blocks_per_plane(32)
                .with_chip_count(16),
        )
        .with_devices(4)
        .with_stripe_kb(4096);
        let spec = SyntheticSpec::new(label)
            .with_read_fraction(0.7)
            .with_mean_sizes_kb(16.0, 16.0)
            .with_locality(locality)
            .with_randomness(randomness, randomness)
            .with_footprint_mb(footprint_mb)
            .with_bursts(16, 60.0);
        let metrics = run_array(&config, SchedulerKind::Spk3, &mut spec.stream(300, 0x5E))
            .expect("the workload fits the array");
        let ios: Vec<u64> = metrics.devices.iter().map(|d| d.io_count).collect();
        println!(
            "{label:<10} bw {:>10.0} KB/s  io imbalance {:.2}  per-device I/Os {ios:?}",
            metrics.bandwidth_kb_per_sec, metrics.skew.io_imbalance,
        );
    }
    println!("\nStriping spreads uniform load evenly; clustered offsets leave shards cold.");

    println!("\nAdaptive placement: the standing hot shard, static vs rebalanced (SPK3)\n");
    let scale = ExperimentScale::quick();
    for label in ["uniform", "hot-shard", "hot-shard-rebalance"] {
        let metrics = scenario::array_skew_figure_metrics(&scale, label, SchedulerKind::Spk3);
        println!(
            "{label:<20} bw {:>10.0} KB/s  io imbalance {:.2}  stripes migrated {}",
            metrics.bandwidth_kb_per_sec, metrics.skew.io_imbalance, metrics.stripes_migrated,
        );
    }
    println!("\nThe rebalancer moves hot stripes off the overloaded device between replay");
    println!("windows, paying for each copy with injected read+write traffic.");
}
