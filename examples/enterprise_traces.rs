//! Replay the sixteen Table 1 enterprise workloads (cfs, hm, msnfs, proj) under
//! VAS, PAS, and SPK3 and report bandwidth and latency per workload — a compact
//! version of Figs 10a and 10c.
//!
//! Run with `cargo run --example enterprise_traces --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one, ExperimentScale};
use sprinkler::ssd::SsdConfig;
use sprinkler::workloads::paper_workloads;

fn main() {
    let scale = ExperimentScale {
        ios_per_workload: 600,
        blocks_per_plane: 32,
    };
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let schedulers = [SchedulerKind::Vas, SchedulerKind::Pas, SchedulerKind::Spk3];

    println!(
        "{:<8} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "workload", "VAS KB/s", "PAS KB/s", "SPK3 KB/s", "VAS lat us", "PAS lat us", "SPK3 lat us"
    );
    let mut speedup_product = 1.0f64;
    let mut speedup_count = 0usize;
    for spec in paper_workloads() {
        let trace = spec.generate(scale.ios_per_workload, 0xE17);
        let mut bw = Vec::new();
        let mut lat = Vec::new();
        for &kind in &schedulers {
            let metrics = run_one(&config, kind, &trace);
            bw.push(metrics.bandwidth_kb_per_sec);
            lat.push(metrics.avg_latency_ns / 1000.0);
        }
        if bw[0] > 0.0 {
            speedup_product *= bw[2] / bw[0];
            speedup_count += 1;
        }
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} | {:>12.1} {:>12.1} {:>12.1}",
            trace.name(),
            bw[0],
            bw[1],
            bw[2],
            lat[0],
            lat[1],
            lat[2]
        );
    }
    if speedup_count > 0 {
        println!(
            "\ngeometric-mean SPK3 bandwidth speedup over VAS: {:.2}x (paper reports 1.8-2.2x)",
            speedup_product.powf(1.0 / speedup_count as f64)
        );
    }
}
