//! Garbage-collection pressure study (Fig 17): compare pristine and 95%-fragmented
//! SSDs under VAS, PAS, and SPK3, showing how much each scheduler loses to GC and
//! that Sprinkler's readdressing callback keeps it ahead.
//!
//! Run with `cargo run --example gc_pressure --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one_detailed, ExperimentScale};
use sprinkler::ssd::{GcConfig, SsdConfig};

fn main() {
    let scale = ExperimentScale {
        ios_per_workload: 400,
        blocks_per_plane: 8,
    };
    let config = SsdConfig::paper_default()
        .with_chip_count(64)
        .with_blocks_per_plane(scale.blocks_per_plane)
        .with_gc(GcConfig::enabled());
    // Write-heavy sweep so garbage collection actually has work to do.
    let trace = scale.sweep_trace(64, 0.3, 0x6C);

    println!(
        "{:<6} {:>16} {:>16} {:>12} {:>16}",
        "sched", "pristine KB/s", "fragmented KB/s", "loss %", "GC invocations"
    );
    for kind in [SchedulerKind::Vas, SchedulerKind::Pas, SchedulerKind::Spk3] {
        let pristine = run_one_detailed(&config, kind, &trace, false, None);
        let fragmented = run_one_detailed(&config, kind, &trace, false, Some(0.95));
        let loss = if pristine.bandwidth_kb_per_sec > 0.0 {
            100.0 * (1.0 - fragmented.bandwidth_kb_per_sec / pristine.bandwidth_kb_per_sec)
        } else {
            0.0
        };
        println!(
            "{:<6} {:>16.0} {:>16.0} {:>12.1} {:>16}",
            kind.label(),
            pristine.bandwidth_kb_per_sec,
            fragmented.bandwidth_kb_per_sec,
            loss,
            fragmented.gc.invocations
        );
    }
    println!();
    println!(
        "GC costs every scheduler bandwidth; Sprinkler degrades more in relative terms \
         (it had more to lose) but remains the fastest, as in Fig 17."
    );
}
