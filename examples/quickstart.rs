//! Quickstart: simulate one workload on a 64-chip SSD under every scheduler the
//! paper evaluates and print a side-by-side summary.
//!
//! Run with `cargo run --example quickstart --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::to_host_requests;
use sprinkler::ssd::{Ssd, SsdConfig};
use sprinkler::workloads::{Locality, SyntheticSpec};

fn main() {
    // A bursty, read-mostly workload with medium transactional locality.
    let spec = SyntheticSpec::new("quickstart")
        .with_read_fraction(0.7)
        .with_mean_sizes_kb(24.0, 16.0)
        .with_randomness(0.9, 0.85)
        .with_locality(Locality::Medium)
        .with_bursts(8, 150.0);
    let trace = spec.generate(1000, 42);

    // The paper's baseline platform: 64 chips over 8 ONFI 2.x channels, 2 dies ×
    // 4 planes per chip, 2 KB pages.  Blocks per plane are scaled down so the run
    // finishes in a blink.
    let config = SsdConfig::paper_default().with_blocks_per_plane(64);
    let requests = to_host_requests(&trace, config.page_size());

    println!("workload: {} ({} I/O requests)", trace.name(), trace.len());
    println!(
        "platform: {} chips, {} channels, queue depth {}",
        config.geometry.total_chips(),
        config.geometry.channels,
        config.queue_depth
    );
    println!();
    println!(
        "{:<6} {:>14} {:>10} {:>14} {:>12} {:>12}",
        "sched", "KB/s", "IOPS", "avg lat (us)", "chip util", "txn count"
    );
    for kind in SchedulerKind::ALL {
        let ssd = Ssd::new(config.clone(), kind.build()).expect("valid configuration");
        let metrics = ssd.run(requests.clone());
        println!(
            "{:<6} {:>14.0} {:>10.0} {:>14.1} {:>11.1}% {:>12}",
            kind.label(),
            metrics.bandwidth_kb_per_sec,
            metrics.iops,
            metrics.avg_latency_ns / 1000.0,
            metrics.chip_utilization * 100.0,
            metrics.transactions
        );
    }
    println!();
    println!("SPK3 = Sprinkler (RIOS + FARO); see README.md for the workspace map.");
}
