//! Scaling study (Fig 1 and Fig 15): how bandwidth and chip utilization evolve as
//! the SSD grows from 16 to 1024 chips, under the conventional controller (VAS)
//! and under Sprinkler (SPK3).
//!
//! This drives the first-class experiment in
//! `sprinkler_experiments::fig15_scaling`; the quick scale keeps the run in the
//! seconds range while covering the full 1024-chip point.  Regenerate at paper
//! scale with `ExperimentScale::full()` (see the README's "Scaling" section).
//!
//! Run with `cargo run --example scaling_study --release`.

use sprinkler::experiments::fig15_scaling;
use sprinkler::experiments::runner::ExperimentScale;

fn main() {
    let scale = ExperimentScale::quick();
    let result = fig15_scaling::run(&scale, None, None);
    for &transfer_kb in &result.transfer_sizes_kb.clone() {
        println!("{}", result.panel(transfer_kb).render());
        println!();
    }
    println!("The conventional controller stagnates (Fig 1); Sprinkler keeps scaling (Fig 15).");
}
