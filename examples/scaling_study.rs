//! Scaling study (Fig 1 and Fig 15): how bandwidth and chip utilization evolve as
//! the SSD grows from 16 to 1024 chips, under the conventional controller (VAS)
//! and under Sprinkler (SPK3).
//!
//! Run with `cargo run --example scaling_study --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one, ExperimentScale};
use sprinkler::ssd::SsdConfig;

fn main() {
    let scale = ExperimentScale {
        ios_per_workload: 400,
        blocks_per_plane: 32,
    };
    let chip_counts = [16usize, 64, 256, 1024];
    let transfer_sizes_kb = [4u64, 32, 128];

    for &transfer_kb in &transfer_sizes_kb {
        println!("=== transfer size {transfer_kb} KB ===");
        println!(
            "{:>8} {:>8} {:>14} {:>12} | {:>14} {:>12}",
            "chips", "dies", "VAS KB/s", "VAS util", "SPK3 KB/s", "SPK3 util"
        );
        for &chips in &chip_counts {
            let config = SsdConfig::paper_default()
                .with_chip_count(chips)
                .with_blocks_per_plane(scale.blocks_per_plane);
            let trace = scale.sweep_trace(transfer_kb, 1.0, 0x5CA1E);
            let vas = run_one(&config, SchedulerKind::Vas, &trace);
            let spk3 = run_one(&config, SchedulerKind::Spk3, &trace);
            println!(
                "{:>8} {:>8} {:>14.0} {:>11.1}% | {:>14.0} {:>11.1}%",
                chips,
                chips * config.geometry.dies_per_chip,
                vas.bandwidth_kb_per_sec,
                vas.chip_utilization * 100.0,
                spk3.bandwidth_kb_per_sec,
                spk3.chip_utilization * 100.0
            );
        }
        println!();
    }
    println!("The conventional controller stagnates (Fig 1); Sprinkler keeps scaling (Fig 15).");
}
