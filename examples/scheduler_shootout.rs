//! Scheduler shootout: a deeper look at *why* Sprinkler wins — idleness, FLP
//! breakdown, transaction counts, and queue stall — on one representative workload
//! (msnfs1), condensing Figs 11, 13, 14, and 16 into one report.
//!
//! Run with `cargo run --example scheduler_shootout --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one, ExperimentScale};
use sprinkler::ssd::SsdConfig;
use sprinkler::workloads::workload;

fn main() {
    let scale = ExperimentScale {
        ios_per_workload: 1000,
        blocks_per_plane: 32,
    };
    let spec = workload("msnfs1").expect("msnfs1 is one of the Table 1 workloads");
    let trace = spec.generate(scale.ios_per_workload, 0x5B007);
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);

    println!("workload: msnfs1 ({} I/Os)\n", trace.len());
    println!(
        "{:<6} {:>11} {:>11} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "sched", "inter-idle", "intra-idle", "txns", "req/txn", "NON-PAL", "PAL1", "PAL2", "PAL3"
    );
    for kind in SchedulerKind::ALL {
        let m = run_one(&config, kind, &trace);
        let flp = m.flp.as_array();
        println!(
            "{:<6} {:>10.1}% {:>10.1}% {:>10} {:>9.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            kind.label(),
            m.inter_chip_idleness * 100.0,
            m.intra_chip_idleness * 100.0,
            m.transactions,
            m.requests_per_transaction,
            flp[0] * 100.0,
            flp[1] * 100.0,
            flp[2] * 100.0,
            flp[3] * 100.0
        );
    }
    println!();
    println!("Expected shape (paper): SPK2 minimizes inter-chip idleness, SPK1 minimizes");
    println!("intra-chip idleness and maximizes PAL3, SPK3 balances both and roughly halves");
    println!("the number of flash transactions relative to VAS.");
}
