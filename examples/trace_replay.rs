//! Streaming trace replay: parse the embedded MSR-Cambridge-style and
//! blkparse-style sample corpora, replay them through the capacity-validating
//! streaming boundary, and then stream a large lazily generated enterprise
//! workload to show that replay memory stays bounded by the device queue
//! depth — not the trace length.
//!
//! Run with `cargo run --example trace_replay --release`.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::ExperimentScale;
use sprinkler::experiments::{run_source, CapacityPolicy};
use sprinkler::ssd::SsdConfig;
use sprinkler::workloads::parse::{sample_blkparse, sample_msr, TextTraceSource};
use sprinkler::workloads::workload;

fn main() {
    let scale = ExperimentScale::quick();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);

    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "trace", "records", "skipped", "KB/s", "lat us", "backlog"
    );

    // 1. The embedded text corpora, streamed through the parser.  The replay
    //    boundary validates every record against the device's logical capacity
    //    (Reject policy: an out-of-capacity record is an error, not an alias).
    let replay_corpus = |label: &str, mut source: TextTraceSource<std::io::Cursor<Vec<u8>>>| {
        let metrics = run_source(
            &config,
            SchedulerKind::Spk3,
            &mut source,
            CapacityPolicy::Reject,
        )
        .expect("the sample corpora fit the simulated device");
        let stats = source.stats();
        println!(
            "{:<16} {:>8} {:>10} {:>12.0} {:>12.1} {:>10}",
            label,
            stats.parsed,
            stats.skipped_malformed + stats.skipped_zero_sized,
            metrics.bandwidth_kb_per_sec,
            metrics.avg_latency_ns / 1000.0,
            metrics.peak_host_backlog,
        );
    };
    replay_corpus("sample_msr", sample_msr());
    replay_corpus("sample_blkparse", sample_blkparse());

    // 2. A Table 1 enterprise workload, generated lazily at 20x the quick
    //    scale.  No trace is ever materialized: the generator feeds the
    //    bounded-admission loop record by record, so the host-side backlog
    //    stays capped at the device queue depth however long the trace is.
    let ios = scale.ios_per_workload * 20;
    let mut stream = workload("msnfs1")
        .expect("msnfs1 is a Table 1 workload")
        .stream(ios, 0xE17);
    let metrics = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut stream,
        CapacityPolicy::Reject,
    )
    .expect("Table 1 footprints fit the simulated device");
    println!(
        "{:<16} {:>8} {:>10} {:>12.0} {:>12.1} {:>10}",
        "msnfs1 (stream)",
        ios,
        0,
        metrics.bandwidth_kb_per_sec,
        metrics.avg_latency_ns / 1000.0,
        metrics.peak_host_backlog,
    );
    assert_eq!(metrics.io_count, ios);
    assert!(
        metrics.peak_host_backlog <= config.queue_depth as u64,
        "streaming replay must keep the host backlog within the queue depth"
    );
    println!(
        "\nstreamed {ios} I/Os with a peak host-side backlog of {} (queue depth {})",
        metrics.peak_host_backlog, config.queue_depth
    );
}
