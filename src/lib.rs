//! Sprinkler — a reproduction of *"Sprinkler: Maximizing Resource Utilization in
//! Many-Chip Solid State Disks"* (Jung & Kandemir, HPCA 2014) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's crates under one roof so examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`sim`] — discrete-event simulation primitives (time, event queue, RNG, stats).
//! * [`flash`] — the NAND flash microarchitecture model (geometry, ONFI timing,
//!   commands, transactions, chip state machines).
//! * [`ssd`] — the many-chip SSD substrate (NVMHC queue, DMA, flash controllers,
//!   channels, page-level FTL with GC, metrics, and the `IoScheduler` trait).
//! * [`core`] — the paper's contribution: VAS, PAS, and the Sprinkler schedulers
//!   (RIOS, FARO, SPK1/2/3).
//! * [`workloads`] — synthetic Table 1 enterprise traces, microbenchmark sweeps,
//!   the streaming `TraceSource` abstraction, and the MSR-CSV/blkparse text-trace
//!   parser with its embedded sample corpus.
//! * [`array`](mod@array) — the multi-SSD array frontend: stripes one logical address
//!   space across N independent Sprinkler devices and replays traces in
//!   parallel with merged host-level metrics.
//! * [`tenants`] — the multi-tenant serving front: deficit-round-robin
//!   fair-share admission with priority classes, token-bucket burst
//!   isolation, and per-tenant QoS metrics ahead of the device scheduler.
//! * [`experiments`] — one module per table/figure of the paper's evaluation,
//!   the streaming replay boundary (bounded admission + logical-capacity
//!   validation), and the named-scenario registry.
//!
//! # Quickstart
//!
//! ```
//! use sprinkler::core::SchedulerKind;
//! use sprinkler::ssd::{Ssd, SsdConfig};
//! use sprinkler::workloads::SyntheticSpec;
//! use sprinkler::experiments::to_host_requests;
//!
//! let config = SsdConfig::paper_default().with_blocks_per_plane(32);
//! let trace = SyntheticSpec::new("quickstart").generate(100, 42);
//! let requests = to_host_requests(&trace, config.page_size());
//! let ssd = Ssd::new(config, SchedulerKind::Spk3.build()).unwrap();
//! let metrics = ssd.run(requests);
//! assert_eq!(metrics.io_count, 100);
//! ```
//!
//! # Building and testing
//!
//! The workspace is self-contained (external deps are offline shims under
//! `vendor/`); from a clean checkout:
//!
//! ```text
//! cargo build --release   # every crate
//! cargo test -q           # unit + integration + property + doc tests
//! cargo bench --no-run    # compiles the 18 bench targets in crates/bench
//! ```
//!
//! Crate dependency order (each depends on the ones before it):
//! `sprinkler_sim` → `sprinkler_flash` → `sprinkler_ssd` → `sprinkler_core`,
//! with `sprinkler_workloads` (only needing `sim`), `sprinkler_array` (the
//! striped multi-device frontend), and `sprinkler_tenants` (the fair-share
//! admission front) feeding `sprinkler_experiments` and `sprinkler_bench` on
//! top.  `ARCHITECTURE.md` at the repo root walks the whole graph.

#![warn(missing_docs)]

pub use sprinkler_array as array;
pub use sprinkler_core as core;
pub use sprinkler_experiments as experiments;
pub use sprinkler_flash as flash;
pub use sprinkler_sim as sim;
pub use sprinkler_ssd as ssd;
pub use sprinkler_tenants as tenants;
pub use sprinkler_workloads as workloads;
