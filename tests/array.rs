//! Integration coverage for the multi-SSD array frontend through the facade.
//!
//! The load-bearing guarantee: a 1-device array is not "approximately" a bare
//! SSD — it is *metric-for-metric identical* to `Ssd::run_stream` over the
//! same trace, for every scheduler.  The striping map's single-device case is
//! the identity, the splitter renumbers fragments to the original dense ids,
//! and the metrics merge copies (not recomputes) the single device's derived
//! figures, so the entire `RunMetrics` struct — counts, bytes, latencies,
//! histogram buckets, FLP and execution breakdowns — must compare equal.

use sprinkler::array::{run_array, ArrayConfig};
use sprinkler::core::SchedulerKind;
use sprinkler::experiments::{run_source, CapacityPolicy};
use sprinkler::ssd::{merged_latency_quantile, SsdConfig};
use sprinkler::workloads::SyntheticSpec;

fn device_config() -> SsdConfig {
    SsdConfig::paper_default().with_blocks_per_plane(16)
}

/// A workload that exercises reads, writes, bursts, and multi-stripe
/// transfers, small enough that all five schedulers replay in test time.
fn workload() -> SyntheticSpec {
    SyntheticSpec::new("identity")
        .with_read_fraction(0.6)
        .with_mean_sizes_kb(48.0, 48.0)
        .with_footprint_mb(64)
        .with_bursts(8, 100.0)
}

#[test]
fn one_device_array_is_metric_for_metric_identical_for_all_schedulers() {
    let config = ArrayConfig::new(device_config()).with_stripe_kb(64);
    let trace = workload().generate(150, 0x1D);
    assert!(
        trace.footprint_bytes() <= config.logical_capacity_bytes(),
        "the identity workload must fit the single-device array"
    );
    for kind in SchedulerKind::ALL {
        let bare = run_source(
            config.device(0),
            kind,
            &mut trace.source(),
            CapacityPolicy::Reject,
        )
        .expect("the workload fits the bare device");
        let array = run_array(&config, kind, &mut trace.source())
            .expect("the workload fits the 1-device array");

        // The device-level metrics are the *same struct*, field for field —
        // including latency histogram buckets and breakdowns.
        assert_eq!(array.devices.len(), 1);
        assert_eq!(
            array.devices[0], bare,
            "{kind}: 1-device array diverged from the bare run"
        );

        // And the merged aggregates are bit-identical copies, not recomputed
        // approximations.
        assert_eq!(array.io_count, bare.io_count, "{kind}");
        assert_eq!(array.read_ios, bare.read_ios, "{kind}");
        assert_eq!(array.write_ios, bare.write_ios, "{kind}");
        assert_eq!(array.bytes_read, bare.bytes_read, "{kind}");
        assert_eq!(array.bytes_written, bare.bytes_written, "{kind}");
        assert_eq!(array.elapsed_ns, bare.elapsed_ns, "{kind}");
        assert_eq!(
            array.bandwidth_kb_per_sec, bare.bandwidth_kb_per_sec,
            "{kind}"
        );
        assert_eq!(array.iops, bare.iops, "{kind}");
        assert_eq!(array.avg_latency_ns, bare.avg_latency_ns, "{kind}");
        assert_eq!(array.p99_latency_ns, bare.p99_latency_ns, "{kind}");
        assert_eq!(array.max_latency_ns, bare.max_latency_ns, "{kind}");
        assert_eq!(array.queue_stall_ns, bare.queue_stall_ns, "{kind}");
    }
}

/// Regression for the silently-dropped latency histogram: flattening an array
/// replay into a summary `RunMetrics` must carry the elementwise-summed
/// per-device bucket counts, so feeding the summary back through
/// `merged_latency_quantile` reproduces the exact p99 the array reported.
/// Before the fix the summary's `..RunMetrics::default()` zeroed the buckets
/// and the round-tripped quantile collapsed to 0 for every scheduler.
#[test]
fn array_summary_round_trips_its_latency_histogram_for_all_schedulers() {
    let config = ArrayConfig::new(device_config())
        .with_stripe_kb(64)
        .with_devices(4);
    let trace = workload().generate(150, 0x42);
    for kind in SchedulerKind::ALL {
        let array = run_array(&config, kind, &mut trace.source())
            .expect("the workload fits the 4-device array");
        assert!(array.p99_latency_ns > 0, "{kind}: no latency samples");
        let summary = array.summary_run_metrics();
        assert_eq!(
            summary.latency_buckets.iter().sum::<u64>(),
            array.io_count,
            "{kind}: the summary histogram must hold every device sample"
        );
        assert_eq!(
            merged_latency_quantile([&summary], 0.99),
            array.p99_latency_ns,
            "{kind}: summary did not round-trip to the array's p99"
        );
        // The always-on telemetry rides along: the summed device counters
        // appear in the summary, and a real replay schedules at least once.
        assert!(
            summary.telemetry.sched_rounds > 0,
            "{kind}: device telemetry was dropped by the summary"
        );
        assert_eq!(
            summary.telemetry.sched_rounds,
            array
                .devices
                .iter()
                .map(|d| d.telemetry.sched_rounds)
                .sum::<u64>(),
            "{kind}"
        );
    }
}

/// The adaptive-placement refactor is behavior-preserving by default: with no
/// `RebalanceConfig` set, a width-4 replay must stay *metric-for-metric
/// identical* — full `RunMetrics` equality per device, histogram buckets
/// included — to the same replay before the indirection layer existed.  The
/// pre-refactor behavior is reproduced here by construction: `rebalance: None`
/// routes through the closed-form `StripeMap`, and this test pins the whole
/// struct so any accidental divergence (id renumbering, arrival order, heat
/// side effects) fails loudly for every scheduler.
#[test]
fn rebalancer_off_replay_is_identical_to_static_striping_for_all_schedulers() {
    let static_config = ArrayConfig::new(device_config())
        .with_stripe_kb(64)
        .with_devices(4);
    assert!(static_config.rebalance.is_none(), "default must be static");
    // The same array through the adaptive machinery with a rebalancer that
    // can never act (zero migration budget): still byte-identical, proving
    // the indirection layer itself changes nothing.
    let inert_config = static_config
        .clone()
        .with_rebalance(sprinkler::array::RebalanceConfig {
            max_total_migrations: 0,
            ..Default::default()
        });
    let trace = workload().generate(150, 0x8A);
    for kind in SchedulerKind::ALL {
        let stat = run_array(&static_config, kind, &mut trace.source()).unwrap();
        let inert = run_array(&inert_config, kind, &mut trace.source()).unwrap();
        assert_eq!(
            stat.devices, inert.devices,
            "{kind}: an inert rebalancer diverged from static striping"
        );
        assert_eq!(stat.io_count, inert.io_count, "{kind}");
        assert_eq!(stat.elapsed_ns, inert.elapsed_ns, "{kind}");
        assert_eq!(
            stat.bandwidth_kb_per_sec, inert.bandwidth_kb_per_sec,
            "{kind}"
        );
        assert_eq!(stat.p99_latency_ns, inert.p99_latency_ns, "{kind}");
        assert_eq!(stat.skew, inert.skew, "{kind}");
        assert_eq!(stat.stripes_migrated, 0, "{kind}");
        assert_eq!(inert.stripes_migrated, 0, "{kind}");
        // The summaries agree too.  The inert rebalancer honestly reports its
        // (side-effect-free) heat decay passes, so that one counter is
        // normalized before comparing the rest of the telemetry.
        let stat_summary = stat.summary_run_metrics();
        let mut inert_summary = inert.summary_run_metrics();
        assert_eq!(inert_summary.telemetry.stripes_migrated, 0, "{kind}");
        assert_eq!(inert_summary.telemetry.migration_bytes, 0, "{kind}");
        assert!(inert_summary.telemetry.heat_decays > 0, "{kind}");
        inert_summary.telemetry.heat_decays = 0;
        assert_eq!(stat_summary, inert_summary, "{kind}");
    }
}

/// With migrations allowed, the rebalancer's activity is visible end to end:
/// counters surface in the `ArrayMetrics` and the flattened telemetry, and
/// the placement genuinely moved stripes off the hot device.
#[test]
fn rebalancer_on_migrates_and_surfaces_telemetry() {
    let config = ArrayConfig::new(device_config())
        .with_stripe_kb(64)
        .with_devices(4)
        .with_rebalance(sprinkler::array::RebalanceConfig {
            window_records: 16,
            trigger_ratio: 1.1,
            ..Default::default()
        });
    // Hammer stripes 0 and 4 — both dealt to device 0 — so round-robin
    // cannot spread the heat but the placement layer can.
    use sprinkler::sim::SimTime;
    use sprinkler::workloads::{Trace, TraceOp, TraceRecord};
    let stripe = config.stripe_bytes;
    let records: Vec<TraceRecord> = (0..400u64)
        .map(|i| TraceRecord {
            id: i,
            arrival: SimTime::from_micros(i * 20),
            op: if i % 3 == 0 {
                TraceOp::Write
            } else {
                TraceOp::Read
            },
            // 80% of I/Os on stripes {0, 4} (both device 0), rest spread.
            offset: match i % 10 {
                0..=3 => 0,
                4..=7 => 4 * stripe,
                8 => stripe,
                _ => 2 * stripe,
            } + (i % 4) * 4096,
            bytes: 16 * 1024,
        })
        .collect();
    let trace = Trace::new("hot", records);
    let metrics = run_array(&config, SchedulerKind::Spk3, &mut trace.source()).unwrap();
    assert!(
        metrics.stripes_migrated > 0,
        "a clustered workload must trigger migration"
    );
    assert_eq!(
        metrics.migration_bytes,
        metrics.stripes_migrated * config.stripe_bytes
    );
    assert!(metrics.heat_decays > 0);
    let summary = metrics.summary_run_metrics();
    assert_eq!(summary.telemetry.stripes_migrated, metrics.stripes_migrated);
    assert_eq!(summary.telemetry.migration_bytes, metrics.migration_bytes);
    assert_eq!(summary.telemetry.heat_decays, metrics.heat_decays);
}

/// Widening the array changes the partitioning, not the work: page-rounded
/// byte totals and read/write splits are preserved for every scheduler at
/// width 4.
#[test]
fn striped_replay_preserves_work_for_all_schedulers() {
    let trace = workload().generate(120, 0x77);
    let one = ArrayConfig::new(device_config()).with_stripe_kb(64);
    let four = one.clone().with_devices(4);
    for kind in SchedulerKind::ALL {
        let narrow = run_array(&one, kind, &mut trace.source()).unwrap();
        let wide = run_array(&four, kind, &mut trace.source()).unwrap();
        assert_eq!(
            narrow.bytes_read + narrow.bytes_written,
            wide.bytes_read + wide.bytes_written,
            "{kind}: page-rounded byte totals must survive striping"
        );
        assert_eq!(narrow.read_ios > 0, wide.read_ios > 0, "{kind}");
        assert!(wide.io_count >= narrow.io_count, "{kind}: splits only add");
        assert!(wide.bandwidth_kb_per_sec > 0.0, "{kind}");
    }
}

#[test]
fn tenant_mux_composes_with_striping() {
    // Tenancy composes with the array frontend: the fair-share mux is itself
    // a `TraceSource`, so its admission-ordered stream stripes across devices
    // like any other trace.  (Per-tenant attribution is a single-device
    // feature — the array path keeps the admission ordering and isolation but
    // reports merged device metrics; see ARCHITECTURE.md.)
    use sprinkler::tenants::{PriorityClass, TenantMux, TenantSpec};
    use sprinkler::workloads::{FootprintSlice, SlicedSource, TraceSource};

    let config = ArrayConfig::new(device_config())
        .with_devices(2)
        .with_stripe_kb(64);
    let slices = FootprintSlice::split_even(config.logical_capacity_bytes(), 2, 4096);
    let lanes = slices
        .into_iter()
        .enumerate()
        .map(|(i, slice)| {
            let workload = SyntheticSpec::new("lane")
                .with_read_fraction(0.5)
                .with_mean_sizes_kb(32.0, 32.0)
                .with_footprint_mb((slice.len / (1024 * 1024)).clamp(1, 32))
                .stream(60, 0xA11 + i as u64);
            let source: Box<dyn TraceSource + Send> = Box::new(SlicedSource::new(workload, slice));
            (
                TenantSpec::new(format!("t{i}"), PriorityClass::Interactive),
                source,
            )
        })
        .collect();
    let mut mux = TenantMux::new(lanes);
    let metrics = run_array(&config, SchedulerKind::Spk3, &mut mux).expect("array run succeeds");
    // Transfers that cross a stripe boundary split into per-device fragments,
    // so the merged count is at least the 120 admitted records.
    assert!(
        metrics.io_count >= 120,
        "records went missing: {}",
        metrics.io_count
    );
    assert!(metrics.bandwidth_kb_per_sec > 0.0);
    // Both devices saw work: the two tenant slices land on different halves
    // of the striped address space.
    assert!(metrics.devices.iter().all(|d| d.io_count > 0));
}
