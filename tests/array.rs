//! Integration coverage for the multi-SSD array frontend through the facade.
//!
//! The load-bearing guarantee: a 1-device array is not "approximately" a bare
//! SSD — it is *metric-for-metric identical* to `Ssd::run_stream` over the
//! same trace, for every scheduler.  The striping map's single-device case is
//! the identity, the splitter renumbers fragments to the original dense ids,
//! and the metrics merge copies (not recomputes) the single device's derived
//! figures, so the entire `RunMetrics` struct — counts, bytes, latencies,
//! histogram buckets, FLP and execution breakdowns — must compare equal.

use sprinkler::array::{run_array, ArrayConfig};
use sprinkler::core::SchedulerKind;
use sprinkler::experiments::{run_source, CapacityPolicy};
use sprinkler::ssd::{merged_latency_quantile, SsdConfig};
use sprinkler::workloads::SyntheticSpec;

fn device_config() -> SsdConfig {
    SsdConfig::paper_default().with_blocks_per_plane(16)
}

/// A workload that exercises reads, writes, bursts, and multi-stripe
/// transfers, small enough that all five schedulers replay in test time.
fn workload() -> SyntheticSpec {
    SyntheticSpec::new("identity")
        .with_read_fraction(0.6)
        .with_mean_sizes_kb(48.0, 48.0)
        .with_footprint_mb(64)
        .with_bursts(8, 100.0)
}

#[test]
fn one_device_array_is_metric_for_metric_identical_for_all_schedulers() {
    let config = ArrayConfig::new(device_config()).with_stripe_kb(64);
    let trace = workload().generate(150, 0x1D);
    assert!(
        trace.footprint_bytes() <= config.logical_capacity_bytes(),
        "the identity workload must fit the single-device array"
    );
    for kind in SchedulerKind::ALL {
        let bare = run_source(
            &config.device,
            kind,
            &mut trace.source(),
            CapacityPolicy::Reject,
        )
        .expect("the workload fits the bare device");
        let array = run_array(&config, kind, &mut trace.source())
            .expect("the workload fits the 1-device array");

        // The device-level metrics are the *same struct*, field for field —
        // including latency histogram buckets and breakdowns.
        assert_eq!(array.devices.len(), 1);
        assert_eq!(
            array.devices[0], bare,
            "{kind}: 1-device array diverged from the bare run"
        );

        // And the merged aggregates are bit-identical copies, not recomputed
        // approximations.
        assert_eq!(array.io_count, bare.io_count, "{kind}");
        assert_eq!(array.read_ios, bare.read_ios, "{kind}");
        assert_eq!(array.write_ios, bare.write_ios, "{kind}");
        assert_eq!(array.bytes_read, bare.bytes_read, "{kind}");
        assert_eq!(array.bytes_written, bare.bytes_written, "{kind}");
        assert_eq!(array.elapsed_ns, bare.elapsed_ns, "{kind}");
        assert_eq!(
            array.bandwidth_kb_per_sec, bare.bandwidth_kb_per_sec,
            "{kind}"
        );
        assert_eq!(array.iops, bare.iops, "{kind}");
        assert_eq!(array.avg_latency_ns, bare.avg_latency_ns, "{kind}");
        assert_eq!(array.p99_latency_ns, bare.p99_latency_ns, "{kind}");
        assert_eq!(array.max_latency_ns, bare.max_latency_ns, "{kind}");
        assert_eq!(array.queue_stall_ns, bare.queue_stall_ns, "{kind}");
    }
}

/// Regression for the silently-dropped latency histogram: flattening an array
/// replay into a summary `RunMetrics` must carry the elementwise-summed
/// per-device bucket counts, so feeding the summary back through
/// `merged_latency_quantile` reproduces the exact p99 the array reported.
/// Before the fix the summary's `..RunMetrics::default()` zeroed the buckets
/// and the round-tripped quantile collapsed to 0 for every scheduler.
#[test]
fn array_summary_round_trips_its_latency_histogram_for_all_schedulers() {
    let config = ArrayConfig::new(device_config())
        .with_stripe_kb(64)
        .with_devices(4);
    let trace = workload().generate(150, 0x42);
    for kind in SchedulerKind::ALL {
        let array = run_array(&config, kind, &mut trace.source())
            .expect("the workload fits the 4-device array");
        assert!(array.p99_latency_ns > 0, "{kind}: no latency samples");
        let summary = array.summary_run_metrics();
        assert_eq!(
            summary.latency_buckets.iter().sum::<u64>(),
            array.io_count,
            "{kind}: the summary histogram must hold every device sample"
        );
        assert_eq!(
            merged_latency_quantile([&summary], 0.99),
            array.p99_latency_ns,
            "{kind}: summary did not round-trip to the array's p99"
        );
        // The always-on telemetry rides along: the summed device counters
        // appear in the summary, and a real replay schedules at least once.
        assert!(
            summary.telemetry.sched_rounds > 0,
            "{kind}: device telemetry was dropped by the summary"
        );
        assert_eq!(
            summary.telemetry.sched_rounds,
            array
                .devices
                .iter()
                .map(|d| d.telemetry.sched_rounds)
                .sum::<u64>(),
            "{kind}"
        );
    }
}

/// Widening the array changes the partitioning, not the work: page-rounded
/// byte totals and read/write splits are preserved for every scheduler at
/// width 4.
#[test]
fn striped_replay_preserves_work_for_all_schedulers() {
    let trace = workload().generate(120, 0x77);
    let one = ArrayConfig::new(device_config()).with_stripe_kb(64);
    let four = one.clone().with_devices(4);
    for kind in SchedulerKind::ALL {
        let narrow = run_array(&one, kind, &mut trace.source()).unwrap();
        let wide = run_array(&four, kind, &mut trace.source()).unwrap();
        assert_eq!(
            narrow.bytes_read + narrow.bytes_written,
            wide.bytes_read + wide.bytes_written,
            "{kind}: page-rounded byte totals must survive striping"
        );
        assert_eq!(narrow.read_ios > 0, wide.read_ios > 0, "{kind}");
        assert!(wide.io_count >= narrow.io_count, "{kind}: splits only add");
        assert!(wide.bandwidth_kb_per_sec > 0.0, "{kind}");
    }
}
