//! Determinism double-replay gate: the dynamic twin of the linter's
//! `no-wall-clock` rule.
//!
//! Two back-to-back replays of the same scenario must produce *fully equal*
//! metrics structs — every latency histogram bucket, every telemetry counter,
//! every per-device breakdown — not merely matching headline figures.  The
//! array-skew cell runs with the rebalancer on (heat tracking, migrations,
//! and concurrent device threads all engaged), which is exactly where a
//! stray wall-clock read, ambient RNG call, or lock-order-dependent
//! accounting would first leak into the numbers.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one, ExperimentScale};
use sprinkler::experiments::scenario::array_skew_metrics;
use sprinkler::ssd::SsdConfig;
use sprinkler::workloads::SweepSpec;

#[test]
fn array_skew_with_rebalancer_replays_identically() {
    let scale = ExperimentScale::quick();
    let mut first = array_skew_metrics(&scale, "hot-shard-rebalance", SchedulerKind::Spk3);
    let mut second = array_skew_metrics(&scale, "hot-shard-rebalance", SchedulerKind::Spk3);
    // `peak_fanout_buffered` is a host-side high-water mark of fragments
    // concurrently buffered across device threads — it measures OS thread
    // interleaving under back-pressure, not simulated state, so it is the
    // one field the determinism guarantee does not cover.
    first.peak_fanout_buffered = 0;
    second.peak_fanout_buffered = 0;
    // Full struct equality: histograms, imbalance stats, placement/migration
    // counters, per-device RunMetrics (each with its own telemetry snapshot).
    assert_eq!(
        first, second,
        "adaptive array replay diverged between two identical runs"
    );
    // The gate must exercise the rebalancer, not an idle configuration.
    assert!(
        first.stripes_migrated > 0,
        "the rebalance cell is expected to migrate at least one stripe"
    );
}

#[test]
fn single_device_replay_is_bit_identical() {
    let config = SsdConfig::paper_default().with_blocks_per_plane(32);
    let trace = SweepSpec::new(16).with_read_fraction(0.4).generate(300, 7);
    let first = run_one(&config, SchedulerKind::Spk3, &trace);
    let second = run_one(&config, SchedulerKind::Spk3, &trace);
    // Covers avg/percentile latencies (floats), the full latency histogram,
    // transaction-level stats, GC stats, and the telemetry snapshot.
    assert_eq!(
        first, second,
        "single-device replay diverged between two identical runs"
    );
    assert_eq!(first.io_count, 300);
}

#[test]
fn tenant_storm_replays_identically() {
    // The multi-tenant front adds three new decision streams on top of the
    // device replay — deficit round-robin turn order, token-bucket refill
    // arithmetic, and per-tenant metric attribution — so the storm cell (the
    // most contended configuration: one lane at 8x volume against a bucket)
    // gets its own double-replay gate.  Full struct equality covers the
    // per-tenant histograms and SLO counters plus the admission stats.
    use sprinkler::experiments::scenario::tenant_storm_outcome;
    let scale = ExperimentScale::quick();
    let first = tenant_storm_outcome(&scale, "storm", SchedulerKind::Spk3);
    let second = tenant_storm_outcome(&scale, "storm", SchedulerKind::Spk3);
    assert_eq!(
        first.metrics, second.metrics,
        "tenant-storm metrics diverged between two identical runs"
    );
    assert_eq!(
        first.admission, second.admission,
        "tenant-storm admission stats diverged between two identical runs"
    );
    // The gate must exercise the contended paths, not an idle front.
    assert!(first.metrics.telemetry.tenant_throttles > 0);
    assert!(first.metrics.telemetry.tenant_deferrals > 0);
}
