//! Cross-crate integration tests: workloads → experiments → schedulers → SSD
//! substrate → flash model, exercised through the facade crate exactly the way a
//! downstream user would.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::{run_one, run_one_detailed, ExperimentScale};
use sprinkler::experiments::to_host_requests;
use sprinkler::flash::Lpn;
use sprinkler::sim::SimTime;
use sprinkler::ssd::request::{Direction, HostRequest};
use sprinkler::ssd::{GcConfig, Ssd, SsdConfig};
use sprinkler::workloads::{paper_workloads, workload, SweepSpec, SyntheticSpec, TraceStats};

fn quick_scale() -> ExperimentScale {
    ExperimentScale {
        ios_per_workload: 200,
        blocks_per_plane: 16,
    }
}

#[test]
fn facade_quickstart_path_works() {
    let config = SsdConfig::paper_default().with_blocks_per_plane(32);
    let trace = SyntheticSpec::new("facade").generate(150, 1);
    let requests = to_host_requests(&trace, config.page_size());
    let ssd = Ssd::new(config, SchedulerKind::Spk3.build()).unwrap();
    let metrics = ssd.run(requests);
    assert_eq!(metrics.io_count, 150);
    assert_eq!(metrics.scheduler, "SPK3");
}

#[test]
fn every_paper_workload_runs_under_every_scheduler() {
    let scale = quick_scale();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    // Keep runtime in check: three representative workloads, all five schedulers.
    for spec in paper_workloads().into_iter().take(3) {
        let trace = spec.generate(scale.ios_per_workload, 99);
        for kind in SchedulerKind::ALL {
            let metrics = run_one(&config, kind, &trace);
            assert_eq!(
                metrics.io_count,
                scale.ios_per_workload,
                "{kind} dropped I/Os on {}",
                trace.name()
            );
        }
    }
}

#[test]
fn trace_statistics_round_trip_through_the_generator() {
    let spec = workload("cfs3").unwrap();
    let trace = spec.generate(2000, 5);
    let stats = TraceStats::analyze(&trace);
    // cfs3 is read-dominated with ~94% read randomness in Table 1.
    assert!(stats.read_fraction() > 0.6);
    assert!(stats.read_randomness > 0.5);
    assert!(stats.total_mb() > 0.0);
}

#[test]
fn sweep_workloads_scale_page_counts_with_transfer_size() {
    let config = SsdConfig::paper_default().with_blocks_per_plane(16);
    let small = SweepSpec::new(4).generate(50, 3);
    let large = SweepSpec::new(256).generate(50, 3);
    let small_reqs = to_host_requests(&small, config.page_size());
    let large_reqs = to_host_requests(&large, config.page_size());
    assert!(small_reqs.iter().all(|r| r.pages == 2));
    assert!(large_reqs.iter().all(|r| r.pages == 128));
}

#[test]
fn spk3_beats_vas_on_an_enterprise_workload_end_to_end() {
    let scale = quick_scale();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let trace = workload("msnfs2")
        .unwrap()
        .generate(scale.ios_per_workload, 77);
    let vas = run_one(&config, SchedulerKind::Vas, &trace);
    let spk3 = run_one(&config, SchedulerKind::Spk3, &trace);
    assert!(spk3.bandwidth_kb_per_sec > vas.bandwidth_kb_per_sec);
    assert!(spk3.avg_latency_ns < vas.avg_latency_ns);
    assert!(spk3.transactions <= vas.transactions);
}

#[test]
fn gc_pipeline_works_through_the_facade() {
    let config = SsdConfig::paper_default()
        .with_chip_count(16)
        .with_blocks_per_plane(8)
        .with_gc(GcConfig::enabled());
    let trace = SweepSpec::new(16).with_read_fraction(0.2).generate(150, 11);
    let metrics = run_one_detailed(&config, SchedulerKind::Spk3, &trace, false, Some(0.95));
    assert_eq!(metrics.io_count, 150);
    assert!(
        metrics.gc.invocations > 0,
        "fragmented SSD must garbage-collect"
    );
    assert!(metrics.gc.blocks_erased > 0);
}

#[test]
fn hand_built_requests_honour_direction_and_size_accounting() {
    let config = SsdConfig::small_test();
    let page = config.page_size();
    let trace = vec![
        HostRequest::new(0, SimTime::ZERO, Direction::Write, Lpn::new(0), 4),
        HostRequest::new(1, SimTime::from_micros(10), Direction::Read, Lpn::new(0), 4),
        HostRequest::new(
            2,
            SimTime::from_micros(20),
            Direction::Read,
            Lpn::new(64),
            2,
        ),
    ];
    let ssd = Ssd::new(config, SchedulerKind::Pas.build()).unwrap();
    let metrics = ssd.run(trace);
    assert_eq!(metrics.io_count, 3);
    assert_eq!(metrics.write_ios, 1);
    assert_eq!(metrics.read_ios, 2);
    assert_eq!(metrics.bytes_written, 4 * page as u64);
    assert_eq!(metrics.bytes_read, 6 * page as u64);
}

#[test]
fn deterministic_runs_produce_identical_metrics() {
    let config = SsdConfig::paper_default().with_blocks_per_plane(16);
    let trace = SyntheticSpec::new("det").generate(100, 13);
    let a = run_one(&config, SchedulerKind::Spk3, &trace);
    let b = run_one(&config, SchedulerKind::Spk3, &trace);
    assert_eq!(
        a, b,
        "same trace + same scheduler must give identical metrics"
    );
}

#[test]
fn sprinkler_stays_ahead_of_vas_at_every_chip_count() {
    let scale = quick_scale();
    let trace = scale.sweep_trace(64, 1.0, 21);
    for chips in [16usize, 256] {
        let config = SsdConfig::paper_default()
            .with_chip_count(chips)
            .with_blocks_per_plane(scale.blocks_per_plane);
        let vas = run_one(&config, SchedulerKind::Vas, &trace);
        let spk3 = run_one(&config, SchedulerKind::Spk3, &trace);
        assert!(
            spk3.bandwidth_kb_per_sec >= vas.bandwidth_kb_per_sec,
            "SPK3 ({:.0} KB/s) must not fall behind VAS ({:.0} KB/s) at {chips} chips",
            spk3.bandwidth_kb_per_sec,
            vas.bandwidth_kb_per_sec
        );
        assert!(
            spk3.avg_latency_ns <= vas.avg_latency_ns,
            "SPK3 latency must not fall behind VAS at {chips} chips"
        );
    }
    // And Sprinkler keeps benefiting from more chips in absolute terms.
    let small = SsdConfig::paper_default()
        .with_chip_count(16)
        .with_blocks_per_plane(scale.blocks_per_plane);
    let large = SsdConfig::paper_default()
        .with_chip_count(256)
        .with_blocks_per_plane(scale.blocks_per_plane);
    let spk3_small = run_one(&small, SchedulerKind::Spk3, &trace);
    let spk3_large = run_one(&large, SchedulerKind::Spk3, &trace);
    assert!(
        spk3_large.bandwidth_kb_per_sec > spk3_small.bandwidth_kb_per_sec,
        "SPK3 must gain bandwidth from 16 to 256 chips ({:.0} vs {:.0} KB/s)",
        spk3_small.bandwidth_kb_per_sec,
        spk3_large.bandwidth_kb_per_sec
    );
}
