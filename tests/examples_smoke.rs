//! Smoke coverage for `examples/`: every example must build, run to
//! completion, and produce output. This keeps the examples from rotting as the
//! API evolves — an example that no longer compiles fails this test, not a
//! human following the docs.
//!
//! Also smoke-runs the 1024-chip point of the scaling experiment directly (in
//! this process, at quick scale) so the paper's largest configuration stays
//! exercised by `cargo test` even where spawning `cargo run` is too slow.

use std::process::Command;

use sprinkler::experiments::fig15_scaling;
use sprinkler::experiments::runner::ExperimentScale;

/// Every file in `examples/`, kept in sync by `covers_every_example_file`.
const EXAMPLES: [&str; 7] = [
    "quickstart",
    "scheduler_shootout",
    "enterprise_traces",
    "gc_pressure",
    "scaling_study",
    "trace_replay",
    "array_frontend",
];

/// Runs the examples sequentially through `cargo run` (sequential so the
/// invocations don't contend on the build-directory lock).
#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--offline", "--example", example])
            .env("CARGO_TERM_COLOR", "never")
            .output()
            .unwrap_or_else(|e| panic!("failed to launch cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            !stdout.trim().is_empty(),
            "example {example} printed nothing to stdout"
        );
    }
}

/// The paper's largest configuration — 1024 chips — runs as a first-class
/// experiment point at quick scale: both schedulers complete the sweep point and
/// report sane metrics.
#[test]
fn scaling_1024_chip_point_runs_at_quick_scale() {
    let scale = ExperimentScale::quick();
    let result = fig15_scaling::run(&scale, Some(&[1024]), Some(&[64]));
    assert_eq!(result.points.len(), 2, "one point per scheduler");
    for point in &result.points {
        assert_eq!(point.chips, 1024);
        assert!(
            point.bandwidth_kb_per_sec > 0.0,
            "{} produced no bandwidth",
            point.scheduler
        );
        assert!((0.0..=1.0).contains(&point.utilization));
        assert!(point.iops > 0.0);
    }
    assert!(result.panel(64).render().contains("1024"));
}

/// The EXAMPLES list above must name exactly the files in `examples/`.
#[test]
fn covers_every_example_file() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "EXAMPLES in tests/examples_smoke.rs is out of sync with examples/"
    );
}
