//! Dedicated integration test for the deep debug-mode invariant validator
//! (`sprinkler::ssd::debug_invariants`).
//!
//! A wrapper scheduler calls `validate_context` on every scheduling round, so
//! a whole replay cross-checks — after each round — the commitment ledger
//! against the per-tag `PageBits` masks, the read-LPN hazard entries and FUA
//! horizon against a from-scratch rebuild from the queued tag states, and the
//! queue's own columnar candidate index.  The traces are chosen to push every
//! structure: mixed reads/writes (hazard index), FUA-heavy streams (horizon),
//! and an overwrite-heavy GC run (GC requests must *not* touch the ledger).
//!
//! The validator compiles to a no-op in release builds; the negative test
//! (a deliberately desynchronized queue/ledger pair must panic) is therefore
//! compiled only under `debug_assertions`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sprinkler::core::SchedulerKind;
use sprinkler::flash::{FlashGeometry, Lpn};
use sprinkler::sim::SimTime;
use sprinkler::ssd::request::{Direction, HostRequest, TagId};
use sprinkler::ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};
use sprinkler::ssd::{validate_context, GcConfig, Ssd, SsdConfig};

/// Wraps a scheduler and validates every cross-structure invariant after
/// every scheduling round, counting the rounds so tests can assert the
/// validator actually ran.
#[derive(Debug)]
struct ValidatingScheduler {
    inner: Box<dyn IoScheduler>,
    rounds: Arc<AtomicU64>,
}

impl ValidatingScheduler {
    fn new(inner: Box<dyn IoScheduler>) -> (Self, Arc<AtomicU64>) {
        let rounds = Arc::new(AtomicU64::new(0));
        (
            ValidatingScheduler {
                inner,
                rounds: Arc::clone(&rounds),
            },
            rounds,
        )
    }
}

impl IoScheduler for ValidatingScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        self.inner.initialize(geometry);
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<sprinkler::sim::TelemetryCounters>) {
        self.inner.attach_telemetry(telemetry);
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        validate_context(ctx);
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.inner.schedule_into(ctx, out);
        // Re-validate after the round too: producing commitments must not
        // have mutated any shared structure (the context is immutable; this
        // guards against interior-mutability creep in scheduler impls).
        validate_context(ctx);
    }

    fn on_complete(&mut self, tag: TagId, page: u32) {
        self.inner.on_complete(tag, page);
    }

    fn supports_readdressing(&self) -> bool {
        self.inner.supports_readdressing()
    }

    fn on_readdress(&mut self, migration: &sprinkler::ssd::ftl::PageMigration) {
        self.inner.on_readdress(migration);
    }
}

fn run_validated(
    config: SsdConfig,
    kind: SchedulerKind,
    trace: Vec<HostRequest>,
) -> (sprinkler::ssd::RunMetrics, u64) {
    let (scheduler, rounds) = ValidatingScheduler::new(kind.build());
    let ssd = Ssd::new(config, Box::new(scheduler)).unwrap();
    let metrics = ssd.run(trace);
    let rounds = rounds.load(Ordering::Relaxed);
    (metrics, rounds)
}

/// Mixed reads and writes over a strided LPN pattern, with every
/// `fua_every`-th request flagged FUA (0 disables FUA entirely).
fn mixed_trace(n: usize, fua_every: usize) -> Vec<HostRequest> {
    (0..n)
        .map(|i| {
            let direction = if i % 3 == 0 {
                Direction::Read
            } else {
                Direction::Write
            };
            HostRequest::new(
                i as u64,
                SimTime::from_micros(i as u64 * 3),
                direction,
                Lpn::new((i as u64 * 17) % 256),
                1 + (i as u32 % 8),
            )
            .with_fua(fua_every != 0 && i % fua_every == 0)
        })
        .collect()
}

#[test]
fn every_scheduler_passes_cross_structure_validation() {
    for kind in SchedulerKind::ALL {
        let trace = mixed_trace(120, 0);
        let expected = trace.len() as u64;
        let (metrics, rounds) = run_validated(SsdConfig::small_test(), kind, trace);
        assert_eq!(metrics.io_count, expected, "{kind:?} lost I/Os");
        assert!(rounds > 0, "{kind:?}: validator never ran");
    }
}

#[test]
fn fua_reordering_horizon_stays_consistent_under_validation() {
    // FUA-dense stream: the horizon entries are exercised on almost every
    // round, including multi-FUA overlap and horizon retirement mid-stream.
    let trace = mixed_trace(150, 2);
    let expected = trace.len() as u64;
    let (metrics, rounds) = run_validated(SsdConfig::small_test(), SchedulerKind::Spk3, trace);
    assert_eq!(metrics.io_count, expected);
    assert!(rounds > 0);
}

#[test]
fn gc_pressure_does_not_desynchronize_the_ledger() {
    // Overwrite-heavy write stream on a small-capacity device with GC on:
    // GC memory requests share chips with host requests but must never be
    // charged to the commitment ledger — exactly the imbalance the validator
    // would catch after the first collection.
    let config = SsdConfig::small_test()
        .with_blocks_per_plane(4)
        .with_gc(GcConfig::enabled());
    let trace: Vec<HostRequest> = (0..2000)
        .map(|i| {
            HostRequest::new(
                i,
                SimTime::from_micros(i * 2),
                Direction::Write,
                Lpn::new(i % 48),
                1,
            )
        })
        .collect();
    let (metrics, rounds) = run_validated(config, SchedulerKind::Spk3, trace);
    assert_eq!(metrics.io_count, 2000);
    assert!(rounds > 0);
    assert!(
        metrics.gc.invocations > 0,
        "overwrite churn on a small device must trigger GC (got {:?})",
        metrics.gc
    );
}

/// The validator must actually fail on divergence: a queue with a committed
/// page paired with a ledger that was never charged is the canonical
/// accounting bug, and `validate_round` has to catch it.  Debug builds only —
/// the validator is compiled out in release.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "ledger outstanding counts diverged")]
fn desynchronized_ledger_is_caught() {
    use sprinkler::ssd::queue::DeviceQueue;
    use sprinkler::ssd::request::Placement;
    use sprinkler::ssd::{validate_round, CommitmentLedger};

    let mut queue = DeviceQueue::new(4);
    let host = HostRequest::new(0, SimTime::ZERO, Direction::Write, Lpn::new(0), 2);
    let placements = vec![
        Placement {
            chip: 0,
            channel: 0,
            way: 0,
            die: 0,
            plane: 0,
        };
        2
    ];
    assert!(queue.admit(TagId(7), host, SimTime::ZERO, placements));
    let slot = queue.slot_of(TagId(7)).unwrap();
    assert!(queue.commit_page_at(slot, 0, SimTime::ZERO));

    // One page is committed on chip 0, but this ledger was never charged.
    let ledger = CommitmentLedger::new(4, 8);
    validate_round(&queue, &ledger);
}
