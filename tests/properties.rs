//! Property-based tests over the public API: invariants that must hold for any
//! workload the generators can produce.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use sprinkler::array::{PlacementMap, StripeMap, StripedFanout};
use sprinkler::core::reference::ReferenceScheduler;
use sprinkler::core::SchedulerKind;
use sprinkler::experiments::to_host_requests;
use sprinkler::flash::{FlashGeometry, Lpn};
use sprinkler::sim::SimTime;
use sprinkler::ssd::request::{Direction, HostRequest, TagId};
use sprinkler::ssd::scheduler::{Commitment, IoScheduler, SchedulerContext};
use sprinkler::ssd::{RunMetrics, Ssd, SsdConfig};
use sprinkler::workloads::{
    Locality, MalformedPolicy, SyntheticSpec, TextTraceSource, Trace, TraceOp, TraceRecord,
    TraceSource,
};

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Read), Just(Direction::Write)]
}

fn arb_requests(max: usize) -> impl Strategy<Value = Vec<HostRequest>> {
    prop::collection::vec(
        (0u64..2000, arb_direction(), 0u64..512, 1u32..24, 0u8..16),
        1..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (at, dir, lpn, pages, fua))| {
                HostRequest::new(
                    i as u64,
                    SimTime::from_micros(at),
                    dir,
                    Lpn::new(lpn),
                    pages,
                )
                .with_fua(fua == 0)
            })
            .collect()
    })
}

/// A shared log of (tag, page) commitments, filled as the simulation runs.
type CommitmentLog = Arc<Mutex<Vec<(TagId, u32)>>>;

/// Wraps a scheduler and records every commitment it emits, so two runs can be
/// compared decision by decision.
#[derive(Debug)]
struct RecordingScheduler {
    inner: Box<dyn IoScheduler>,
    log: CommitmentLog,
}

impl RecordingScheduler {
    fn new(inner: Box<dyn IoScheduler>) -> (Self, CommitmentLog) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (
            RecordingScheduler {
                inner,
                log: Arc::clone(&log),
            },
            log,
        )
    }
}

impl IoScheduler for RecordingScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        self.inner.initialize(geometry);
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<sprinkler::sim::TelemetryCounters>) {
        self.inner.attach_telemetry(telemetry);
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        // Debug-build invariant check, exercised on *every* scheduling round of
        // every property-test replay: the queue's internal indexes must match a
        // from-scratch rebuild, and the ledger/hazard/FUA-horizon structures
        // must agree with the per-tag commit/complete masks.  Compiles to a
        // no-op in release builds.
        sprinkler::ssd::validate_context(ctx);
        let start = out.len();
        self.inner.schedule_into(ctx, out);
        let mut log = self.log.lock().unwrap();
        log.extend(out[start..].iter().map(|c| (c.tag, c.page)));
    }

    fn on_complete(&mut self, tag: TagId, page: u32) {
        self.inner.on_complete(tag, page);
    }

    fn supports_readdressing(&self) -> bool {
        self.inner.supports_readdressing()
    }

    fn on_readdress(&mut self, migration: &sprinkler::ssd::ftl::PageMigration) {
        self.inner.on_readdress(migration);
    }
}

/// Wraps a scheduler and tracks the highest per-chip outstanding count the
/// scheduler context ever exposes, so the ledger's cap invariant can be checked
/// over whole simulations.
#[derive(Debug)]
struct CapProbe {
    inner: Box<dyn IoScheduler>,
    peak_outstanding: Arc<Mutex<usize>>,
}

impl CapProbe {
    fn new(inner: Box<dyn IoScheduler>) -> (Self, Arc<Mutex<usize>>) {
        let peak = Arc::new(Mutex::new(0));
        (
            CapProbe {
                inner,
                peak_outstanding: Arc::clone(&peak),
            },
            peak,
        )
    }
}

impl IoScheduler for CapProbe {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn initialize(&mut self, geometry: &FlashGeometry) {
        self.inner.initialize(geometry);
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<sprinkler::sim::TelemetryCounters>) {
        self.inner.attach_telemetry(telemetry);
    }

    fn schedule_into(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Commitment>) {
        let round_peak = (0..ctx.chip_count())
            .map(|chip| ctx.outstanding(chip))
            .max()
            .unwrap_or(0);
        let mut peak = self.peak_outstanding.lock().unwrap();
        *peak = (*peak).max(round_peak);
        drop(peak);
        self.inner.schedule_into(ctx, out);
    }

    fn on_complete(&mut self, tag: TagId, page: u32) {
        self.inner.on_complete(tag, page);
    }

    fn supports_readdressing(&self) -> bool {
        self.inner.supports_readdressing()
    }

    fn on_readdress(&mut self, migration: &sprinkler::ssd::ftl::PageMigration) {
        self.inner.on_readdress(migration);
    }
}

/// Runs a trace under a scheduler and returns the metrics plus the exact
/// commitment stream the scheduler produced.
fn run_recorded(
    config: &SsdConfig,
    scheduler: Box<dyn IoScheduler>,
    requests: &[HostRequest],
) -> (RunMetrics, Vec<(TagId, u32)>) {
    let (recording, log) = RecordingScheduler::new(scheduler);
    let ssd = Ssd::new(config.clone(), Box::new(recording)).unwrap();
    let metrics = ssd.run(requests.to_vec());
    let stream = log.lock().unwrap().clone();
    (metrics, stream)
}

proptest! {
    // The ceiling is deliberately high: the vendored proptest honors
    // `PROPTEST_CASES` as a *cap*, so everyday runs (CI exports
    // `PROPTEST_CASES=16`) stay fast while the dedicated stress step runs the
    // full 256 cases against the reference twins (`PROPTEST_CASES=256`, see
    // .github/workflows/ci.yml).
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every admitted I/O completes, whatever the arrival pattern, under every
    /// scheduler.
    #[test]
    fn no_io_is_ever_lost(requests in arb_requests(40), scheduler_index in 0usize..5) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let expected = requests.len() as u64;
        let config = SsdConfig::small_test();
        let ssd = Ssd::new(config, kind.build()).unwrap();
        let metrics = ssd.run(requests);
        prop_assert_eq!(metrics.io_count, expected);
        prop_assert!(metrics.avg_latency_ns > 0.0);
    }

    /// Byte accounting matches the requested transfer sizes exactly.
    #[test]
    fn byte_accounting_is_exact(requests in arb_requests(30)) {
        let config = SsdConfig::small_test();
        let page = config.page_size() as u64;
        let expected_read: u64 = requests.iter()
            .filter(|r| r.direction.is_read())
            .map(|r| r.pages as u64 * page)
            .sum();
        let expected_written: u64 = requests.iter()
            .filter(|r| r.direction.is_write())
            .map(|r| r.pages as u64 * page)
            .sum();
        let ssd = Ssd::new(config, SchedulerKind::Spk3.build()).unwrap();
        let metrics = ssd.run(requests);
        prop_assert_eq!(metrics.bytes_read, expected_read);
        prop_assert_eq!(metrics.bytes_written, expected_written);
    }

    /// The run window and latency histogram are exact for any workload and
    /// scheduler: the window endpoints reproduce the elapsed time, and the
    /// shared-bound buckets hold exactly one count per completed I/O (the
    /// invariant the array summary's dropped-histogram bug violated).
    #[test]
    fn window_and_histogram_invariants_hold(
        requests in arb_requests(30),
        scheduler_index in 0usize..5,
    ) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let ssd = Ssd::new(SsdConfig::small_test(), kind.build()).unwrap();
        let m = ssd.run(requests);
        prop_assert_eq!(m.run_end_ns - m.run_start_ns, m.elapsed_ns);
        prop_assert_eq!(m.latency_buckets.iter().sum::<u64>(), m.io_count);
    }

    /// The same invariants survive the array summary flattening: the summary's
    /// window spans the union elapsed, and its histogram is the elementwise
    /// sum of every device's buckets — one count per device-level I/O.
    #[test]
    fn array_summary_window_and_histogram_invariants_hold(
        requests in arb_requests(24),
        scheduler_index in 0usize..5,
        width in 1usize..5,
    ) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let device = SsdConfig::small_test();
        let page = device.page_size() as u64;
        let records: Vec<TraceRecord> = requests
            .iter()
            .map(|r| TraceRecord {
                id: r.id,
                arrival: r.arrival,
                op: if r.direction.is_read() { TraceOp::Read } else { TraceOp::Write },
                offset: r.start_lpn.value() * page,
                bytes: r.pages as u64 * page,
            })
            .collect();
        let trace = Trace::new("prop-array", records);
        let config = sprinkler::array::ArrayConfig::new(device)
            .with_devices(width)
            .with_stripe_kb(64);
        // Workloads past the striped footprint are rejected, not summarized.
        if let Ok(array) = sprinkler::array::run_array(&config, kind, &mut trace.source()) {
            let summary = array.summary_run_metrics();
            prop_assert_eq!(summary.run_end_ns - summary.run_start_ns, summary.elapsed_ns);
            prop_assert_eq!(
                summary.latency_buckets.iter().sum::<u64>(),
                array.io_count
            );
            prop_assert_eq!(
                sprinkler::ssd::merged_latency_quantile([&summary], 0.99),
                array.p99_latency_ns
            );
        }
    }

    /// Metric fractions stay within their mathematical bounds.
    #[test]
    fn metric_fractions_are_bounded(requests in arb_requests(30), scheduler_index in 0usize..5) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let ssd = Ssd::new(SsdConfig::small_test(), kind.build()).unwrap();
        let m = ssd.run(requests);
        prop_assert!((0.0..=1.0).contains(&m.chip_utilization));
        prop_assert!((0.0..=1.0).contains(&m.inter_chip_idleness));
        prop_assert!((0.0..=1.0).contains(&m.intra_chip_idleness));
        let flp_sum: f64 = m.flp.as_array().iter().sum();
        prop_assert!(flp_sum == 0.0 || (flp_sum - 1.0).abs() < 1e-9);
        let exec = m.execution;
        let exec_sum = exec.bus_operation + exec.bus_contention + exec.memory_operation + exec.idle;
        prop_assert!(exec_sum <= 1.0 + 1e-6);
        prop_assert!(m.memory_requests >= m.transactions);
    }

    /// Physical page addressing round-trips through the flat PPN encoding for any
    /// geometry shape.
    #[test]
    fn ppn_round_trip_holds_for_any_geometry(
        channels in 1usize..6,
        ways in 1usize..6,
        dies in 1usize..4,
        planes in 1usize..4,
        blocks in 1usize..12,
        pages in 1usize..16,
        sample in 0u64..10_000,
    ) {
        let geometry = FlashGeometry {
            channels,
            chips_per_channel: ways,
            dies_per_chip: dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_size: 2048,
        };
        let total = geometry.total_pages() as u64;
        let ppn = sprinkler::flash::Ppn::new(sample % total);
        let addr = geometry.addr_of(ppn);
        prop_assert!(geometry.check_addr(addr).is_ok());
        prop_assert_eq!(geometry.ppn_of(addr), ppn);
    }

    /// Differential test for the scheduler hot-path refactor: every optimized
    /// scheduler (index-driven hazard checks, incremental per-chip candidates,
    /// reusable scratch buffers) must produce *commitment streams byte-identical*
    /// to its naive full-scan reference twin, and agree exactly on I/O and byte
    /// accounting, across random traces with mixed directions, sizes, and FUA
    /// barriers.
    ///
    /// Re-derived for the corrected commitment accounting: both twins now run
    /// against the `CommitmentLedger`, whose per-round headroom is the full
    /// `max_committed_per_chip` (the seed double-counted same-round commits),
    /// so the expected streams differ from the seed's — but fast and reference
    /// must still agree commitment by commitment.
    ///
    /// With the data-oriented core, "optimized" now means the fully columnar
    /// round path: CSR candidate extents with packed (page, die, plane)
    /// priority keys, dense slot-handle columns, the bitmask page states, and
    /// the slice-based ledger/hazard reads.  The reference twin still walks
    /// the queue naively (`sprinkler_core::reference` is untouched), and the
    /// `RecordingScheduler` wrapper additionally cross-validates the columnar
    /// index against a from-scratch rebuild on every round of both replays.
    #[test]
    fn refactored_schedulers_match_their_reference_twins(
        requests in arb_requests(40),
        scheduler_index in 0usize..5,
    ) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let config = SsdConfig::small_test();
        let (fast_metrics, fast_stream) = run_recorded(&config, kind.build(), &requests);
        let (ref_metrics, ref_stream) =
            run_recorded(&config, Box::new(ReferenceScheduler::new(kind)), &requests);
        prop_assert_eq!(
            &fast_stream,
            &ref_stream,
            "{} commitment stream diverges from its reference",
            kind
        );
        prop_assert_eq!(fast_metrics.io_count, ref_metrics.io_count);
        prop_assert_eq!(fast_metrics.memory_requests, ref_metrics.memory_requests);
        prop_assert_eq!(fast_metrics.bytes_read, ref_metrics.bytes_read);
        prop_assert_eq!(fast_metrics.bytes_written, ref_metrics.bytes_written);
        prop_assert_eq!(fast_metrics.transactions, ref_metrics.transactions);
        prop_assert_eq!(fast_metrics.avg_latency_ns, ref_metrics.avg_latency_ns);
        prop_assert_eq!(fast_metrics.p99_latency_ns, ref_metrics.p99_latency_ns);
        prop_assert_eq!(fast_metrics.elapsed_ns, ref_metrics.elapsed_ns);
    }

    /// The ledger's hard cap holds under every scheduler and any workload the
    /// generators produce: at the start of every scheduling round, no chip holds
    /// more than `max_committed_per_chip` committed-but-incomplete memory
    /// requests.  Together with the deterministic full-headroom regression test
    /// in `crates/ssd/src/ssd.rs`, this brackets the corrected semantics from
    /// both sides: the cap is never exceeded and never halved.
    #[test]
    fn commitment_cap_is_enforced_with_full_headroom(
        requests in arb_requests(40),
        scheduler_index in 0usize..5,
    ) {
        let kind = SchedulerKind::ALL[scheduler_index];
        let config = SsdConfig::small_test();
        let cap = config.max_committed_per_chip;
        let (probe, peak) = CapProbe::new(kind.build());
        let ssd = Ssd::new(config, Box::new(probe)).unwrap();
        let metrics = ssd.run(requests);
        prop_assert!(metrics.io_count > 0);
        let peak = *peak.lock().unwrap();
        prop_assert!(
            peak <= cap,
            "{} let a chip reach {} outstanding commitments (cap {})",
            kind,
            peak,
            cap
        );
    }

    /// Synthetic traces always respect their configured footprint and sizes:
    /// the *whole access* (`offset + bytes`) stays inside the footprint — the
    /// seed only bounded the offset, spilling up to 4 MB past it.
    #[test]
    fn synthetic_traces_respect_their_spec(
        read_fraction in 0.0f64..1.0,
        footprint_mb in 16u64..256,
        seed in 0u64..1000,
    ) {
        let spec = SyntheticSpec::new("prop")
            .with_read_fraction(read_fraction)
            .with_footprint_mb(footprint_mb)
            .with_locality(Locality::Medium);
        let trace = spec.generate(200, seed);
        prop_assert_eq!(trace.len(), 200);
        for record in trace.iter() {
            prop_assert!(record.offset + record.bytes <= footprint_mb * 1024 * 1024);
            prop_assert!(record.bytes >= 512);
        }
    }

    /// Lazily streamed generation is record-for-record identical to eager
    /// generation, and the stream honours its declared footprint bound.
    #[test]
    fn synthetic_stream_is_the_lazy_twin_of_generate(
        footprint_mb in 8u64..128,
        seed in 0u64..1000,
        locality_index in 0usize..3,
    ) {
        let locality = [Locality::Low, Locality::Medium, Locality::High][locality_index];
        let spec = SyntheticSpec::new("lazy")
            .with_footprint_mb(footprint_mb)
            .with_locality(locality);
        let trace = spec.generate(150, seed);
        let mut stream = spec.stream(150, seed);
        let bound = stream.footprint_bytes();
        for expected in trace.iter() {
            let got = stream.next_record();
            prop_assert_eq!(got.as_ref(), Some(expected));
            prop_assert!(expected.offset + expected.bytes <= bound);
        }
        prop_assert!(stream.next_record().is_none());
    }

    /// Text round trip: any synthetic trace written as MSR-style CSV and
    /// parsed back through the streaming `TraceSource` boundary preserves the
    /// converted host requests' LPN ranges, directions, and arrival order.
    #[test]
    fn parsed_traces_preserve_lpn_ranges_and_arrival_order(
        footprint_mb in 8u64..128,
        seed in 0u64..1000,
        read_fraction in 0.0f64..1.0,
    ) {
        let spec = SyntheticSpec::new("roundtrip")
            .with_read_fraction(read_fraction)
            .with_footprint_mb(footprint_mb);
        let trace = spec.generate(120, seed);
        let csv = sprinkler::workloads::parse::write_msr_csv("prop", trace.iter());
        let mut source = TextTraceSource::from_text("roundtrip", csv)
            .with_policy(MalformedPolicy::Error);

        let page_size = 2048;
        let original = to_host_requests(&trace, page_size);
        let mut index = 0usize;
        let mut last_arrival = SimTime::ZERO;
        while let Some(record) = source.next_record() {
            let request = &original[index];
            // Same pages, same direction, same order.
            let (lpn, pages) = record.pages(page_size);
            prop_assert_eq!(lpn, request.start_lpn.value());
            prop_assert_eq!(pages, request.pages);
            prop_assert_eq!(record.op.is_read(), request.direction.is_read());
            // Arrival order is preserved and nondecreasing.
            prop_assert!(record.arrival >= last_arrival);
            last_arrival = record.arrival;
            index += 1;
        }
        prop_assert!(source.error().is_none(), "round trip must parse cleanly");
        prop_assert_eq!(index, original.len());
    }

    /// The striping map's LPN mapping is a bijection within the array
    /// footprint: `locate_lpn` round-trips through `lpn_to_global` for every
    /// page, distinct global LPNs never collide on the same (device, local)
    /// pair, and each local LPN stays inside the device's local footprint
    /// image.
    #[test]
    fn stripe_lpn_map_is_a_bijection_within_the_footprint(
        devices in 1usize..8,
        stripe_pages in 1u64..32,
        footprint_pages in 1u64..512,
    ) {
        let page = 2048u64;
        let map = StripeMap::new(devices, stripe_pages * page);
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..footprint_pages {
            let (device, local) = map.locate_lpn(lpn, page);
            prop_assert!(device < devices);
            prop_assert_eq!(
                map.lpn_to_global(device, local, page),
                lpn,
                "LPN map must round-trip"
            );
            prop_assert!(
                seen.insert((device, local)),
                "distinct LPNs must map to distinct (device, local) pairs"
            );
            // The local page sits inside the device's local footprint image.
            let local_bound = map.local_footprint(footprint_pages * page, device);
            prop_assert!((local + 1) * page <= local_bound);
        }
    }

    /// Splitting a straddling record is loss-free: fragment bytes sum to the
    /// record's bytes, every fragment maps back inside the record's global
    /// range, and no two fragments land on the same device (coalescing merges
    /// a device's locally contiguous pieces).
    #[test]
    fn stripe_splits_are_loss_free(
        devices in 1usize..8,
        stripe_pages in 1u64..16,
        offset in 0u64..(1 << 22),
        bytes in 1u64..(1 << 20),
    ) {
        let map = StripeMap::new(devices, stripe_pages * 2048);
        let record = sprinkler::workloads::TraceRecord {
            id: 0,
            arrival: SimTime::ZERO,
            op: sprinkler::workloads::TraceOp::Write,
            offset,
            bytes,
        };
        let fragments = map.split(&record);
        let total: u64 = fragments.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(total, bytes, "split must preserve byte totals");
        let mut devices_seen = std::collections::HashSet::new();
        for fragment in &fragments {
            prop_assert!(fragment.bytes >= 1);
            prop_assert!(
                devices_seen.insert(fragment.device),
                "coalescing must leave one fragment per device"
            );
            // The fragment's first byte maps back into the record's range.
            let global = map.to_global(fragment.device, fragment.offset);
            prop_assert!(global >= offset && global < offset + bytes);
        }
    }

    /// Every per-device sub-stream of a striped fanout is a valid trace
    /// source: arrivals nondecreasing, ids dense, fragments within the
    /// declared local footprint — and the union of the sub-streams preserves
    /// the source's byte totals.
    #[test]
    fn striped_substreams_are_valid_trace_sources(
        devices in 1usize..6,
        stripe_kb in 1u64..256,
        seed in 0u64..500,
    ) {
        let spec = SyntheticSpec::new("fanout").with_footprint_mb(16);
        let expected: u64 = spec.generate(120, seed).iter().map(|r| r.bytes).sum();
        let mut source = spec.stream(120, seed);
        let fanout = StripedFanout::new(&mut source, StripeMap::new(devices, stripe_kb * 1024));
        let mut total = 0u64;
        for device in 0..devices {
            let mut sub = fanout.device_source(device);
            let bound = sub.footprint_bytes();
            let mut last_arrival = SimTime::ZERO;
            let mut next_id = 0u64;
            while let Some(record) = sub.next_record() {
                prop_assert!(record.arrival >= last_arrival, "arrivals must be nondecreasing");
                prop_assert_eq!(record.id, next_id, "fragment ids must be dense");
                prop_assert!(
                    record.offset + record.bytes <= bound,
                    "fragments must respect the local footprint bound"
                );
                last_arrival = record.arrival;
                next_id += 1;
                total += record.bytes;
            }
        }
        prop_assert_eq!(total, expected, "fanout must preserve byte totals");
    }

    /// Arbitrary migration sequences preserve the placement layer's
    /// bijection: after any sequence of (stripe, target-device) migration
    /// attempts, `locate_lpn` still round-trips through `lpn_to_global` for
    /// every page of the footprint, distinct LPNs never collide on the same
    /// (device, local LPN) pair, every placed stripe stays within its
    /// device's slot cap, and the internal forward/occupancy tables agree.
    #[test]
    fn migration_sequences_preserve_the_placement_bijection(
        devices in 2usize..6,
        stripe_pages in 1u64..16,
        total_stripes in 1u64..48,
        moves in proptest::collection::vec((0u64..48, 0usize..6), 0..64),
        slot_slack in 0u64..8,
    ) {
        let page = 2048u64;
        let stripe_bytes = stripe_pages * page;
        // Tight slot caps: just enough for the round-robin image plus a
        // little slack, so migrations regularly hit full devices and the
        // refusal path gets exercised alongside the happy path.
        let base_slots = total_stripes.div_ceil(devices as u64);
        let caps = vec![base_slots + slot_slack; devices];
        let mut placement = PlacementMap::round_robin(
            devices, stripe_bytes, total_stripes, caps.clone());
        let mut applied = 0u64;
        for (stripe, target) in moves {
            let stripe = stripe % total_stripes.max(1);
            let target = target % devices;
            if let Some(m) = placement.migrate(stripe, target) {
                prop_assert_eq!(m.stripe, stripe);
                prop_assert_eq!(m.to_device, target);
                prop_assert!(m.from_device != target, "no-op moves must be refused");
                prop_assert!(m.to_slot < caps[target], "slot cap must contain the move");
                applied += 1;
            }
            placement.validate_tables();
        }
        // Full bijection sweep over the footprint's pages.
        let footprint_pages = total_stripes * stripe_pages;
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..footprint_pages {
            let (device, local) = placement.locate_lpn(lpn, page);
            prop_assert!(device < devices);
            prop_assert_eq!(
                placement.lpn_to_global(device, local, page),
                lpn,
                "LPN map must round-trip after {} migrations", applied
            );
            prop_assert!(
                seen.insert((device, local)),
                "distinct LPNs must never collide after migrations"
            );
            // Containment: the local page stays below the device's
            // ever-occupied frontier (the adaptive fanout's footprint bound).
            prop_assert!((local + 1) * page <= placement.local_slot_bound(device));
        }
        // And splits stay loss-free under the migrated placement.
        let record = sprinkler::workloads::TraceRecord {
            id: 0,
            arrival: SimTime::ZERO,
            op: sprinkler::workloads::TraceOp::Write,
            offset: 0,
            bytes: footprint_pages * page,
        };
        let mut fragments = Vec::new();
        placement.split_into(&record, &mut fragments);
        let total: u64 = fragments.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(total, record.bytes, "split must preserve byte totals");
    }
}

/// A fully backlogged tenant source: `count` records of exactly `bytes` bytes
/// each, all submitted at t=0, so deficit round-robin alone decides the
/// emission order.
#[derive(Debug)]
struct BackloggedSource {
    remaining: u64,
    bytes: u64,
}

impl TraceSource for BackloggedSource {
    fn name(&self) -> &str {
        "backlogged"
    }

    fn footprint_bytes(&self) -> u64 {
        self.bytes
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(TraceRecord {
            id: self.remaining,
            arrival: SimTime::ZERO,
            op: TraceOp::Read,
            offset: 0,
            bytes: self.bytes,
        })
    }
}

proptest! {
    /// Weighted fair admission, stated exactly: with every lane backlogged
    /// from t=0 and every record exactly one quantum, a full DRR cycle emits
    /// precisely `weight` records per tenant — so over any whole number of
    /// cycles the byte share per unit weight is *equal* across tenants, and
    /// no backlogged tenant is ever starved (each appears once per cycle).
    #[test]
    fn weighted_drr_shares_match_weights_exactly(
        weights in proptest::collection::vec(1u32..=8, 2..6),
    ) {
        use sprinkler::tenants::{
            PriorityClass, TenantMux, TenantSpec, DEFAULT_QUANTUM_BYTES,
        };

        let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
        let cycles = 3u64;
        let lanes = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let spec = TenantSpec::new(format!("t{i}"), PriorityClass::Batch)
                    .with_weight(w);
                // Enough backlog to stay busy through the measured prefix.
                let source: Box<dyn TraceSource + Send> = Box::new(BackloggedSource {
                    remaining: cycles * w as u64 + w as u64,
                    bytes: DEFAULT_QUANTUM_BYTES,
                });
                (spec, source)
            })
            .collect();
        let mut mux = TenantMux::new(lanes);

        let prefix = cycles * total_weight;
        let mut emitted_per_lane = vec![0u64; weights.len()];
        let mut first_seen = vec![None; weights.len()];
        for position in 0..prefix {
            let tagged = mux.next_tagged().expect("lanes are backlogged");
            let lane = tagged.tenant as usize;
            emitted_per_lane[lane] += 1;
            first_seen[lane].get_or_insert(position);
        }

        for (i, &w) in weights.iter().enumerate() {
            // Exact weight-proportional service over whole cycles.
            prop_assert_eq!(
                emitted_per_lane[i],
                cycles * w as u64,
                "lane {} (weight {}) got an unfair share", i, w
            );
            // No starvation: every backlogged lane is served within the
            // first cycle.
            let seen = first_seen[i].expect("every lane was served");
            prop_assert!(
                seen < total_weight,
                "lane {} first served at {} (cycle is {})", i, seen, total_weight
            );
        }
    }
}
