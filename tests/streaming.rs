//! Integration coverage for the streaming trace-ingestion path: the bounded
//! admission loop, its equivalence with eager (fully materialized) replay, and
//! the capacity validation at the `TraceSource` → SSD boundary.

use sprinkler::core::SchedulerKind;
use sprinkler::experiments::runner::ExperimentScale;
use sprinkler::experiments::{run_source, to_host_requests, CapacityPolicy};
use sprinkler::ssd::{GcConfig, Ssd, SsdConfig};
use sprinkler::workloads::{workload, SyntheticSpec};

/// The full streaming pipeline (lazy generator → `TraceSource` → capacity
/// boundary → `run_stream`) must be metric-identical to the materialized
/// pipeline (eager generation → `to_host_requests` → `Ssd::run`) for every
/// scheduler, including under saturating bursts that force admission
/// backpressure.  (The substrate-level proof that `run_stream`'s deferral
/// matches the seed's pre-scheduled eager event loop is
/// `bounded_streaming_matches_the_eager_reference_loop` in
/// `crates/ssd/src/ssd.rs`, which diffs against that loop directly.)
#[test]
fn streaming_replay_matches_materialized_replay_for_every_scheduler() {
    let config = SsdConfig::small_test();
    // Bursty and saturating: the 8-deep small_test queue is constantly full.
    let spec = SyntheticSpec::new("equiv")
        .with_footprint_mb(1)
        .with_bursts(16, 40.0);
    let trace = spec.generate(400, 23);
    for kind in SchedulerKind::ALL {
        // Materialized: convert the whole trace, hand the Vec to `run`.
        let requests = to_host_requests(&trace, config.page_size());
        let eager = Ssd::new(config.clone(), kind.build())
            .unwrap()
            .run(requests);
        // Streaming: the lazily generated twin through the replay boundary.
        let streamed = run_source(
            &config,
            kind,
            &mut spec.stream(400, 23),
            CapacityPolicy::Reject,
        )
        .unwrap();
        assert_eq!(
            eager, streamed,
            "{kind}: streaming replay diverged from materialized replay"
        );
    }
}

/// Preconditioned + GC-enabled runs stream identically too (GC readdressing is
/// the one path that mutates scheduler-visible state outside a scheduling
/// round).
#[test]
fn streaming_replay_matches_eager_replay_under_gc() {
    let config = SsdConfig::small_test()
        .with_blocks_per_plane(4)
        .with_gc(GcConfig::enabled());
    let spec = SyntheticSpec::new("gc-equiv")
        .with_read_fraction(0.2)
        .with_footprint_mb(1)
        .with_bursts(8, 60.0);
    let trace = spec.generate(300, 5);
    for kind in [SchedulerKind::Vas, SchedulerKind::Spk3] {
        let eager = Ssd::new(config.clone(), kind.build())
            .unwrap()
            .run(to_host_requests(&trace, config.page_size()));
        let streamed = run_source(
            &config,
            kind,
            &mut spec.stream(300, 5),
            CapacityPolicy::Reject,
        )
        .unwrap();
        assert_eq!(eager.io_count, streamed.io_count);
        assert_eq!(eager.gc.invocations, streamed.gc.invocations);
        assert_eq!(eager.avg_latency_ns, streamed.avg_latency_ns, "{kind}");
    }
}

/// The headline property of the tentpole: replay memory is bounded by the
/// queue depth, not the trace length.  A 20k-I/O saturating burst through an
/// 8-deep queue keeps the host-side backlog at ≤ 8 buffered requests and the
/// event queue bounded by in-flight work (the seed pre-scheduled one arrival
/// event per trace record — 20k pending events up front).
#[test]
fn backlog_stays_bounded_by_queue_depth_across_20k_ios() {
    let config = SsdConfig::small_test();
    let depth = config.queue_depth as u64;
    let metrics = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut SyntheticSpec::new("bounded")
            .with_footprint_mb(1)
            .with_bursts(32, 10.0)
            .stream(20_000, 11),
        CapacityPolicy::Reject,
    )
    .unwrap();
    assert_eq!(metrics.io_count, 20_000);
    assert!(
        metrics.peak_host_backlog <= depth,
        "host backlog {} exceeded queue depth {depth}",
        metrics.peak_host_backlog
    );
    assert!(
        metrics.peak_pending_events < 20_000 / 4,
        "event queue grew with the trace: {} pending events",
        metrics.peak_pending_events
    );
}

/// The ≥1M-I/O streaming demonstration (acceptance criterion of the streaming
/// subsystem): a million-request enterprise replay completes with queue-side
/// memory bounded by the queue depth.  Ignored in everyday `cargo test` for
/// time; CI runs it in release mode (`--ignored`), and the
/// `streaming_replay` bench target exercises the same shape under Criterion.
#[test]
#[ignore = "multi-minute in debug builds; CI runs it in release via --ignored"]
fn million_io_streaming_replay_is_bounded() {
    let scale = ExperimentScale::quick();
    let config = SsdConfig::paper_default().with_blocks_per_plane(scale.blocks_per_plane);
    let ios = 1_000_000;
    let mut stream = workload("msnfs1")
        .expect("msnfs1 is a Table 1 workload")
        .stream(ios, 0x1A6E);
    let metrics = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut stream,
        CapacityPolicy::Reject,
    )
    .unwrap();
    assert_eq!(metrics.io_count, ios);
    assert!(
        metrics.peak_host_backlog <= config.queue_depth as u64,
        "host backlog {} exceeded queue depth {}",
        metrics.peak_host_backlog,
        config.queue_depth
    );
    assert!(
        metrics.peak_pending_events < 10_000,
        "event queue must track in-flight work, not trace length: {}",
        metrics.peak_pending_events
    );
}

/// Capacity validation at the boundary: a workload bigger than the device is
/// rejected under `Reject` and folded under `Wrap` — never silently aliased
/// (the seed's behaviour).
#[test]
fn oversized_workloads_are_rejected_or_wrapped_at_the_boundary() {
    // 16 chips at 8 blocks/plane: a 256 MiB device; the workload spans 1 GiB.
    let config = SsdConfig::paper_default()
        .with_chip_count(16)
        .with_blocks_per_plane(8);
    let capacity_pages = config.geometry.total_pages() as u64;
    let spec = SyntheticSpec::new("oversized").with_footprint_mb(1024);
    assert!(
        1024 * 1024 * 1024 > config.geometry.capacity_bytes(),
        "the fixture workload must exceed the device"
    );

    let error = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut spec.stream(500, 3),
        CapacityPolicy::Reject,
    )
    .expect_err("a trace bigger than the device must be rejected");
    assert_eq!(error.capacity_pages, capacity_pages);
    assert!(error.first_lpn + error.pages as u64 > capacity_pages);

    let metrics = run_source(
        &config,
        SchedulerKind::Spk3,
        &mut spec.stream(500, 3),
        CapacityPolicy::Wrap,
    )
    .expect("wrapping folds every record into capacity");
    assert_eq!(metrics.io_count, 500);
}
