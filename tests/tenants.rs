//! Integration coverage for the multi-tenant serving front through the facade.
//!
//! The load-bearing guarantees: every completed I/O is attributed to exactly
//! one tenant lane, per-tenant latency is measured from *submission* (so
//! fair-share queueing counts against the tenant's SLO), the token bucket
//! actually throttles a lane that exceeds its contract, and the admission
//! stats, lane metrics, and telemetry counters all tell the same story.

use sprinkler::core::SchedulerKind;
use sprinkler::ssd::SsdConfig;
use sprinkler::tenants::{run_tenants, PriorityClass, TenantMux, TenantSpec, TokenBucketConfig};
use sprinkler::workloads::{FootprintSlice, SlicedSource, SyntheticSpec, TraceSource};

fn device_config() -> SsdConfig {
    SsdConfig::paper_default().with_blocks_per_plane(16)
}

/// Builds `n` equally provisioned tenants over disjoint slices of the device.
fn tenants(
    config: &SsdConfig,
    specs: Vec<TenantSpec>,
    count: u64,
) -> Vec<(TenantSpec, Box<dyn TraceSource + Send>)> {
    let slices = FootprintSlice::split_even(
        config.geometry.capacity_bytes(),
        specs.len(),
        config.page_size() as u64,
    );
    specs
        .into_iter()
        .zip(slices)
        .enumerate()
        .map(|(i, (spec, slice))| {
            let workload = SyntheticSpec::new("lane")
                .with_read_fraction(0.6)
                .with_mean_sizes_kb(16.0, 16.0)
                .with_footprint_mb((slice.len / (1024 * 1024)).clamp(1, 32))
                .stream(count, 0xBEEF + i as u64);
            let boxed: Box<dyn TraceSource + Send> = Box::new(SlicedSource::new(workload, slice));
            (spec, boxed)
        })
        .collect()
}

#[test]
fn every_io_lands_in_exactly_one_lane_and_the_books_agree() {
    let config = device_config();
    let mux = TenantMux::new(tenants(
        &config,
        vec![
            TenantSpec::new("web", PriorityClass::Interactive),
            TenantSpec::new("video", PriorityClass::Streaming),
            TenantSpec::new("etl", PriorityClass::Batch),
        ],
        100,
    ));
    let outcome = run_tenants(&config, SchedulerKind::Spk3, mux).expect("run succeeds");

    // Lane attribution partitions the run: per-tenant counts and bytes sum to
    // the device totals.
    assert_eq!(outcome.metrics.tenants.len(), 3);
    let ios: u64 = outcome.metrics.tenants.iter().map(|t| t.io_count).sum();
    assert_eq!(ios, outcome.metrics.io_count);
    let bytes: u64 = outcome
        .metrics
        .tenants
        .iter()
        .map(|t| t.total_bytes())
        .sum();
    assert_eq!(
        bytes,
        outcome.metrics.bytes_read + outcome.metrics.bytes_written
    );

    // The admission stats and the lane metrics agree lane by lane.
    assert_eq!(outcome.admission.len(), 3);
    for (stats, lane) in outcome.admission.iter().zip(&outcome.metrics.tenants) {
        assert_eq!(stats.name, lane.name);
        assert_eq!(stats.admitted, lane.io_count, "lane {}", lane.name);
        // Admission counts raw trace bytes; the lane counts the page-rounded
        // transfer the device actually performed.
        assert!(stats.bytes <= lane.total_bytes(), "lane {}", lane.name);
    }

    // And the always-on telemetry saw every admission.
    assert_eq!(outcome.metrics.telemetry.tenant_admissions, ios);
}

#[test]
fn per_tenant_latency_charges_admission_queueing_to_the_tenant() {
    let config = device_config();
    // An SLO of 1 ns is unmeetable: every completion must count as a
    // violation, proving the violation counter sees real latencies.
    let mux = TenantMux::new(tenants(
        &config,
        vec![
            TenantSpec::new("strict", PriorityClass::Interactive).with_slo_latency_ns(1),
            TenantSpec::new("lax", PriorityClass::Batch).with_slo_latency_ns(u64::MAX),
        ],
        80,
    ));
    let outcome = run_tenants(&config, SchedulerKind::Spk3, mux).expect("run succeeds");
    let lane = |name: &str| {
        outcome
            .metrics
            .tenants
            .iter()
            .find(|t| t.name == name)
            .expect("lane exists")
    };
    assert_eq!(lane("strict").slo_violations, lane("strict").io_count);
    assert_eq!(lane("lax").slo_violations, 0);
    // Submission-measured latency can only exceed the device-side figure.
    for tenant in &outcome.metrics.tenants {
        assert!(tenant.p99_latency_ns > 0, "lane {}", tenant.name);
        assert!(
            tenant.max_latency_ns as f64 >= tenant.avg_latency_ns,
            "lane {}",
            tenant.name
        );
    }
}

#[test]
fn token_bucket_throttles_the_lane_that_exceeds_its_contract() {
    let config = device_config();
    // 1 MB/s against a greedy 16KB-mean workload: the bucket must engage.
    let throttled = TenantSpec::new("capped", PriorityClass::Batch)
        .with_bucket(TokenBucketConfig::new(1024 * 1024, 64 * 1024));
    let free = TenantSpec::new("free", PriorityClass::Batch);
    let mux = TenantMux::new(tenants(&config, vec![throttled, free], 60));
    let outcome = run_tenants(&config, SchedulerKind::Spk3, mux).expect("run succeeds");
    let stats = |name: &str| {
        outcome
            .admission
            .iter()
            .find(|s| s.name == name)
            .expect("stats exist")
    };
    assert!(
        stats("capped").throttles > 0,
        "the bucket never engaged: {:?}",
        stats("capped")
    );
    assert_eq!(stats("free").throttles, 0);
    assert_eq!(
        outcome.metrics.telemetry.tenant_throttles,
        stats("capped").throttles
    );
    // Both lanes still complete all their work — throttling delays, never drops.
    assert_eq!(stats("capped").admitted + stats("free").admitted, 120);
}

#[test]
fn runs_without_tenancy_report_no_tenant_lanes() {
    // The single-tenant (anonymous) path must stay byte-identical to the
    // pre-tenancy world: no lanes, zero tenant telemetry.
    let config = device_config();
    let trace = SyntheticSpec::new("solo").generate(50, 11);
    let requests = sprinkler::experiments::to_host_requests(&trace, config.page_size());
    let ssd = sprinkler::ssd::Ssd::new(config, SchedulerKind::Spk3.build()).expect("valid config");
    let metrics = ssd.run(requests);
    assert!(metrics.tenants.is_empty());
    assert_eq!(metrics.telemetry.tenant_admissions, 0);
    assert_eq!(metrics.telemetry.tenant_deferrals, 0);
    assert_eq!(metrics.telemetry.tenant_throttles, 0);
}
