//! Release-mode proof that the steady-state replay hot loop allocates nothing.
//!
//! This binary installs [`CountingAllocator`] as its global allocator and
//! replays a steady-state workload through `Ssd::run_stream`: a warm-up
//! prefix sizes every pool (device-queue tag states, transaction scratch,
//! commitment buffers, FARO scratch, the event heap, the FTL map), then an
//! [`AllocScope`] opens at the warm-up boundary and must observe **zero
//! allocation events** until the trace is exhausted.  Any per-I/O allocation
//! that sneaks back into the queue/scheduler/controller/chip path turns this
//! from 0 into thousands, so the gate is unambiguous.
//!
//! The two heavyweight proofs are `#[ignore]`d: they are meaningful as a
//! performance gate only in release mode, and CI runs them explicitly with
//! `cargo test --release --test zero_alloc -- --ignored` (see
//! .github/workflows/ci.yml).
//!
//! Workload shape: all requests span 8 pages; writes cycle a fixed 512-LPN
//! footprint that warm-up maps completely, so the steady-state FTL map never
//! grows; reads roam a wider range (unmapped reads are served without
//! mutating the map).  GC stays disabled (the default), so free blocks only
//! deplete — the write volume is sized far below the device capacity.

use std::cell::RefCell;
use std::rc::Rc;

use sprinkler::core::SchedulerKind;
use sprinkler::flash::Lpn;
use sprinkler::sim::{AllocScope, CountingAllocator, SimTime};
use sprinkler::ssd::request::{Direction, HostRequest};
use sprinkler::ssd::{RunMetrics, Ssd, SsdConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Pages per request: fixed so warm-up establishes every per-tag capacity.
const PAGES: u32 = 8;
/// Write-footprint LPN bases: 64 bases × 8 pages = 512 logical pages, all
/// mapped during warm-up.
const WRITE_BASES: u64 = 64;

fn steady_requests(total: u64, spacing_ns: u64) -> Vec<HostRequest> {
    (0..total)
        .map(|i| {
            let (direction, lpn) = if i % 2 == 0 {
                // Reads roam a wider range; unmapped reads are legal and
                // alloc-free (served from the static placement).
                (Direction::Read, Lpn::new((i * 13) % 4096))
            } else {
                (Direction::Write, Lpn::new((i % WRITE_BASES) * PAGES as u64))
            };
            HostRequest::new(
                i,
                SimTime::from_nanos(i * spacing_ns),
                direction,
                lpn,
                PAGES,
            )
        })
        .collect()
}

/// What the metered replay observed: the allocation delta over the
/// steady-state window and how many requests that window spanned.
#[derive(Debug, Default)]
struct Meter {
    scope: Option<AllocScope>,
    steady_allocs: Option<u64>,
    steady_bytes: Option<u64>,
}

/// Wraps the arrival iterator and opens an [`AllocScope`] once `warmup`
/// requests have been pulled, closing it when the trace is exhausted — the
/// measurement window is therefore exactly the steady-state portion of the
/// replay loop, on the replay thread.
struct Metered<I> {
    inner: I,
    yielded: u64,
    warmup: u64,
    meter: Rc<RefCell<Meter>>,
}

impl<I: Iterator<Item = HostRequest>> Iterator for Metered<I> {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        match self.inner.next() {
            Some(request) => {
                self.yielded += 1;
                if self.yielded == self.warmup {
                    self.meter.borrow_mut().scope = Some(AllocScope::begin());
                    if std::env::var_os("ZERO_ALLOC_PANIC").is_some() {
                        sprinkler::sim::panic_on_alloc(true);
                    }
                }
                Some(request)
            }
            None => {
                // Everything past this point (metrics finalization, teardown)
                // is one-time end-of-run work, not per-I/O cost: close the
                // measurement window here.
                sprinkler::sim::panic_on_alloc(false);
                let mut meter = self.meter.borrow_mut();
                if meter.steady_allocs.is_none() {
                    let scope = meter.scope.expect("warm-up boundary was reached");
                    meter.steady_allocs = Some(scope.allocations());
                    meter.steady_bytes = Some(scope.bytes());
                }
                None
            }
        }
    }
}

/// Replays `total` requests through `run_stream`, measuring allocations after
/// the first `warmup` pulls.  Returns the run metrics and the steady-state
/// allocation delta.
fn metered_replay(config: SsdConfig, total: u64, warmup: u64) -> (RunMetrics, u64, u64) {
    let requests = steady_requests(total, 1_000);
    let meter = Rc::new(RefCell::new(Meter::default()));
    let source = Metered {
        inner: requests.into_iter(),
        yielded: 0,
        warmup,
        meter: Rc::clone(&meter),
    };
    let ssd = Ssd::new(config, SchedulerKind::Spk3.build()).unwrap();
    let metrics = ssd.run_stream(source);
    let meter = meter.borrow();
    (
        metrics,
        meter.steady_allocs.expect("the replay drained the source"),
        meter.steady_bytes.expect("the replay drained the source"),
    )
}

fn assert_zero_alloc_steady_state(config: SsdConfig, total: u64, warmup: u64) {
    let (metrics, steady_allocs, steady_bytes) = metered_replay(config, total, warmup);
    assert_eq!(metrics.io_count, total, "every request must complete");
    // The always-on telemetry substrate rode along for free.
    assert_eq!(metrics.telemetry.stream_admissions, total);
    assert!(metrics.telemetry.sched_rounds > 0);
    assert_eq!(
        steady_allocs,
        0,
        "steady-state replay performed {steady_allocs} allocations \
         ({steady_bytes} bytes) over {} measured requests — the hot loop \
         regressed from zero allocations per I/O",
        total - warmup,
    );
}

/// Steady-state replay on the 64-chip paper geometry allocates nothing.
#[test]
#[ignore = "release-mode perf gate; run via cargo test --release --test zero_alloc -- --ignored"]
fn steady_state_replay_is_allocation_free_small() {
    let config = SsdConfig::paper_default().with_blocks_per_plane(64);
    assert_zero_alloc_steady_state(config, 6_000, 3_000);
}

/// The same proof at 1024 chips: pool sizing, not luck, keeps the loop clean.
#[test]
#[ignore = "release-mode perf gate; run via cargo test --release --test zero_alloc -- --ignored"]
fn steady_state_replay_is_allocation_free_1024_chips() {
    let config = SsdConfig::paper_default()
        .with_chip_count(1024)
        .with_blocks_per_plane(64);
    assert_zero_alloc_steady_state(config, 6_000, 3_000);
}

/// The counting allocator itself works in this binary: a deliberate heap
/// allocation inside a scope is observed.  (Not ignored — this sanity check
/// is cheap and guards against the gate silently measuring nothing.)
#[test]
fn counting_allocator_observes_allocations() {
    let scope = AllocScope::begin();
    let v: Vec<u64> = Vec::with_capacity(1024);
    assert!(scope.allocations() >= 1, "allocation was not counted");
    assert!(scope.bytes() >= 8 * 1024, "bytes were not counted");
    drop(v);
}
