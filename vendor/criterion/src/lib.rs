//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The container building this repo has no crates.io access, so the bench
//! harness is vendored: it implements `Criterion`, `BenchmarkGroup`, `Bencher`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros with real
//! wall-clock timing (warmup iteration + `sample_size` timed samples, reporting
//! min/mean/max). It is intentionally simple — no outlier analysis, no HTML
//! reports — but the numbers are honest and the JSON summary line per benchmark
//! (`{"bench": ..., "mean_ns": ...}` on stdout) is stable enough to diff across
//! commits (see `BENCH_seed.json` at the workspace root).
//!
//! Command-line behavior mirrors what cargo passes to `harness = false` bench
//! targets: `--test` runs every benchmark exactly once (smoke mode), and a free
//! argument filters benchmarks by substring, so `cargo bench -- spk3` works.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant folding, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    // The read_volatile dance is what criterion itself does on stable.
    unsafe {
        let ret = std::ptr::read_volatile(&value);
        std::mem::forget(value);
        ret
    }
}

/// How a bench invocation was asked to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timed run (`cargo bench`).
    Bench,
    /// Single-iteration smoke run (`cargo bench -- --test`, or `cargo test`
    /// executing a bench target).
    Test,
}

/// The benchmark manager. One instance is threaded through every function
/// registered with [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                // Flags cargo/libtest pass through that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" | "--verbose" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            mode,
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Registers a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = match self.mode {
            Mode::Bench => sample_size.max(1),
            Mode::Test => 1,
        };
        if self.mode == Mode::Bench {
            // Untimed warmup so one-time costs (lazy init, cold caches) don't
            // land in the first timed sample and skew recorded baselines.
            let mut warmup = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut warmup);
        }
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                times.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
        }
        if times.is_empty() {
            println!("{id}: no iterations recorded");
            return;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id}: mean {} [min {} .. max {}] over {} samples",
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            times.len()
        );
        // Machine-readable line for tooling (one JSON object per benchmark).
        println!(
            "{{\"bench\":\"{id}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{}}}",
            times.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group; the id is reported as
    /// `group_name/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group. (The shim has no per-group state to flush; this exists
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Times closures on behalf of one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into a
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42u64), 42);
        let v = vec![1, 2, 3];
        assert_eq!(black_box(v.clone()), v);
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iterations, 2);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(500.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5e9).ends_with('s'));
    }
}
