//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.next_in_usize_range(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range_and_element_strategy() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        let strategy = vec(5u64..10, 1..8);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|e| (5..10).contains(e)));
        }
    }
}
