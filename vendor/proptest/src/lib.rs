//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The container building this repo has no crates.io access, so property
//! testing is vendored: strategies (`Just`, integer/float ranges, tuples,
//! `prop_oneof!`, `prop::collection::vec`, `prop_map`), the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Design choices that differ from real proptest, on purpose:
//!
//! * **Deterministic by construction.** Case `i` of test `t` is generated from
//!   `hash(module_path::t, i)` — every run, every machine, same inputs. There
//!   is no persistence file to manage, which is why `proptest-regressions/`
//!   holds only a policy README (see that file).
//! * **`PROPTEST_CASES` caps, never raises.** CI sets it to keep the suite in
//!   the seconds range; a test asking for 24 cases with `PROPTEST_CASES=8` runs
//!   8, with `PROPTEST_CASES=1000` still runs 24.
//! * **No shrinking.** On failure the panic message includes the case index and
//!   derived seed; rerunning reproduces it exactly, which replaces shrinking's
//!   role of making failures actionable.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` module alias from real proptest's prelude
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body. The shim maps this to
/// `assert!`; the surrounding harness annotates panics with the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly chooses among strategies producing the same value type.
/// Weighted arms (`weight => strategy`) are accepted and the weights ignored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]` that runs
/// the body over `config.cases` deterministically generated inputs (capped by
/// `PROPTEST_CASES`). Failures panic with the case index so they reproduce
/// exactly on rerun.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_id, case);
                    let run = || {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        )+
                        $body
                    };
                    if let Err(payload) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "proptest shim: {test_id} failed at case {case}/{cases} \
                             (deterministic; rerun reproduces this case)"
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
