//! Value-generation strategies (the shim's counterpart of `proptest::strategy`).

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no shrinking tree: `generate` produces the
/// final value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, mirroring `Strategy::prop_filter`. The shim
    /// resamples up to a fixed retry budget and panics if the predicate is too
    /// restrictive.
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Boxes this strategy for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneOf")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> OneOf<T> {
    /// Builds the choice strategy; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_in_usize_range(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    rng.$method(self.start, self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range strategy");
                    if start == <$ty>::MIN && end == <$ty>::MAX {
                        return rng.next_u64() as $ty;
                    }
                    // Uniform over [start, end]; the span fits in u64 because
                    // the full-range case was handled above.
                    let span = (end as u64) - (start as u64) + 1;
                    start + (rng.next_u64() % span) as $ty
                }
            }
        )+
    };
}

impl_int_range_strategy! {
    u8 => next_in_u8_range,
    u16 => next_in_u16_range,
    u32 => next_in_u32_range,
    u64 => next_in_u64_range,
    usize => next_in_usize_range,
}

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_in_u64_range(0, span) as i128) as $ty
                }
            }
        )+
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut r = rng();
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = (0u8..=3).generate(&mut r);
            assert!(v <= 3);
            saw_lo |= v == 0;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn inclusive_range_reaches_the_type_maximum() {
        let mut r = rng();
        let mut saw_max = false;
        for _ in 0..2000 {
            let v = (250u8..=u8::MAX).generate(&mut r);
            assert!(v >= 250);
            saw_max |= v == u8::MAX;
        }
        assert!(saw_max, "u8::MAX must be generated by 250u8..=u8::MAX");
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut r), 42);
    }

    #[test]
    fn oneof_draws_every_option() {
        let mut r = rng();
        let s = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn filter_resamples_until_predicate_holds() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u64..10, Just(7u8), 0.0f64..1.0).generate(&mut r);
        assert!(a < 10);
        assert_eq!(b, 7);
        assert!((0.0..1.0).contains(&c));
    }
}
