//! Deterministic run configuration and RNG for the proptest shim.

/// Mirrors `proptest::test_runner::ProptestConfig` (the subset used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs, before the `PROPTEST_CASES` cap.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Requests `cases` runs per property (mirrors
    /// `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: `cases`, capped by the `PROPTEST_CASES`
    /// environment variable when set to a smaller value. The cap keeps CI wall
    /// time bounded without letting the environment silently *increase* work.
    pub fn effective_cases(&self) -> u32 {
        let cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok());
        match cap {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

/// Deterministic per-case RNG (SplitMix64 seeded from the test id and case
/// index). The same (test, case) pair always yields the same stream, on every
/// platform — this is what makes the shim reproducible without persisted
/// regression files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for case `case` of the test identified by `test_id`.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_in_u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_in_usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.next_in_u64_range(lo as u64, hi as u64) as usize
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_in_u32_range(&mut self, lo: u32, hi: u32) -> u32 {
        self.next_in_u64_range(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_in_u16_range(&mut self, lo: u16, hi: u16) -> u16 {
        self.next_in_u64_range(u64::from(lo), u64::from(hi)) as u16
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_in_u8_range(&mut self, lo: u8, hi: u8) -> u8 {
        self.next_in_u64_range(u64::from(lo), u64::from(hi)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = TestRng::for_case("f", 0);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn proptest_cases_caps_but_never_raises() {
        // Note: mutating the environment is unsafe-free on this edition and the
        // test runner may run tests concurrently, so probe with a scoped var.
        let config = ProptestConfig::with_cases(24);
        std::env::set_var("PROPTEST_CASES", "8");
        assert_eq!(config.effective_cases(), 8);
        std::env::set_var("PROPTEST_CASES", "1000");
        assert_eq!(config.effective_cases(), 24);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(config.effective_cases(), 24);
    }
}
