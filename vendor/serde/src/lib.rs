//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The container building this repo has no crates.io access, so the workspace
//! vendors a minimal stand-in: the `Serialize`/`Deserialize` names resolve (both
//! as derive macros and as traits) and the derives are no-ops. No code in the
//! workspace serializes through serde — reports are emitted as hand-rolled text
//! and JSON — so this is sufficient for every `use serde::{Deserialize,
//! Serialize}` in the tree. Swapping in the real crates later only requires
//! replacing the `path` dependencies with registry versions.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The no-op derive does not
/// implement it; nothing in the workspace bounds on it.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. The no-op derive does not
/// implement it; nothing in the workspace bounds on it.
pub trait Deserialize<'de>: Sized {}
