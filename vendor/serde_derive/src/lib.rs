//! No-op derive macros standing in for `serde_derive` in this offline workspace.
//!
//! The simulator derives `Serialize`/`Deserialize` on its config, metrics, and
//! report types so downstream users can wire in real serde, but nothing inside
//! the workspace performs serialization. These derives therefore accept the
//! syntax and emit no code; the marker traits live in the sibling `serde` shim.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
